package ddp

import (
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/core"
	"ddstore/internal/fetch"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/obs/tracectx"
)

// Loader is how a rank materializes a batch of samples by global id. The
// returned latencies (one per sample, virtual time) may be nil when the
// loader has no timing information.
type Loader interface {
	Len() int
	LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error)
}

// DataPlane is the batch-loading surface both DDStore planes expose: the
// in-process RMA store (core.Store) and the TCP client group
// (transport.Group) satisfy it identically, because both route Load
// through the shared fetch engine (internal/fetch). LoadLazy is the
// zero-copy variant: header-validated views over the pooled wire buffers,
// with tensor decode deferred to first touch.
type DataPlane interface {
	Len() int
	LoadTimed(ids []int64) ([]*graph.Graph, []time.Duration, error)
	LoadLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error)
	CacheStats() cache.Stats
	LatencyStats() fetch.LatencySummary
}

// TracedDataPlane is a DataPlane whose lazy loads can carry a distributed
// trace context down the fan-out (transport.Group implements it).
type TracedDataPlane interface {
	DataPlane
	LoadLazyTraced(ids []int64, tc tracectx.Context) ([]*graph.Lazy, []time.Duration, error)
}

// PlaneLoader serves batches from either DDStore data plane. It replaces
// the former per-plane StoreLoader/GroupLoader pair — one adapter, two
// planes.
type PlaneLoader struct {
	Plane DataPlane
	// Trace opens a sampled root trace per lazy batch when the plane
	// supports traced loads: every per-owner wire request propagates a
	// child context to the servers, whose timing trailers come back as
	// nested "server" spans.
	Trace bool
	// Spans, when non-nil with Trace set, receives one client-side root
	// span per traced batch ("load-batch", category "train"), the parent of
	// the fetch and server spans sharing its trace id.
	Spans *obs.SpanRing
}

// Len returns the dataset size.
func (l *PlaneLoader) Len() int { return l.Plane.Len() }

// LoadBatch implements Loader via the plane's timed loader.
func (l *PlaneLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	return l.Plane.LoadTimed(ids)
}

// LoadBatchLazy returns the batch as lazy views instead of materialized
// graphs, threading buffer ownership straight from the wire to the caller
// — no copy at the loader seam. The caller must consume each view exactly
// once: Graph() to materialize (which releases the underlying buffer
// reference) or Release() to drop it.
func (l *PlaneLoader) LoadBatchLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error) {
	tp, ok := l.Plane.(TracedDataPlane)
	if !l.Trace || !ok {
		return l.Plane.LoadLazy(ids)
	}
	tc := tracectx.New(true)
	start := obs.EpochNow()
	out, lat, err := tp.LoadLazyTraced(ids, tc)
	if l.Spans != nil {
		l.Spans.Record(obs.Span{
			Name: "load-batch", Cat: "train", Owner: -1, Samples: len(ids),
			Start: start, Dur: obs.EpochNow() - start,
			TraceID: tc.TraceID, SpanID: tc.SpanID,
		})
	}
	return out, lat, err
}

// CacheStats reports the plane's sample-cache counters — the zero Stats
// when the plane runs without a cache.
func (l *PlaneLoader) CacheStats() cache.Stats { return l.Plane.CacheStats() }

// LatencyStats reports the plane's per-sample fetch-latency percentiles.
func (l *PlaneLoader) LatencyStats() fetch.LatencySummary { return l.Plane.LatencyStats() }

// TimedSource is a SampleSource that can report per-read modeled latency
// (the simulated PFF/CFF readers implement it).
type TimedSource interface {
	core.SampleSource
	ReadSampleTimed(id int64) (*graph.Graph, time.Duration, error)
}

// SourceLoader serves batches by reading each sample directly from a
// storage backend — the PFF/CFF baseline path: every batch goes back to the
// (simulated or real) filesystem.
type SourceLoader struct {
	Source core.SampleSource
}

// Len returns the dataset size.
func (l *SourceLoader) Len() int { return l.Source.Len() }

// LoadBatch implements Loader, reporting per-sample latency when the
// backend supports it.
func (l *SourceLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	out := make([]*graph.Graph, len(ids))
	var lat []time.Duration
	timed, hasTiming := l.Source.(TimedSource)
	if hasTiming {
		lat = make([]time.Duration, len(ids))
	}
	for i, id := range ids {
		if hasTiming {
			g, d, err := timed.ReadSampleTimed(id)
			if err != nil {
				return nil, nil, err
			}
			out[i] = g
			lat[i] = d
			continue
		}
		g, err := l.Source.ReadSample(id)
		if err != nil {
			return nil, nil, err
		}
		out[i] = g
	}
	return out, lat, nil
}
