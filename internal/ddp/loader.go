package ddp

import (
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/core"
	"ddstore/internal/graph"
)

// Loader is how a rank materializes a batch of samples by global id. The
// returned latencies (one per sample, virtual time) may be nil when the
// loader has no timing information.
type Loader interface {
	Len() int
	LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error)
}

// StoreLoader serves batches from a DDStore instance (in-memory chunks +
// one-sided RMA).
type StoreLoader struct {
	Store *core.Store
}

// Len returns the dataset size.
func (l *StoreLoader) Len() int { return l.Store.Len() }

// LoadBatch implements Loader via the store's timed loader.
func (l *StoreLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	return l.Store.LoadTimed(ids)
}

// CacheStats reports the store's remote-sample cache counters — the zero
// Stats when the store was opened without a cache (core.Options.CacheBytes
// <= 0).
func (l *StoreLoader) CacheStats() cache.Stats { return l.Store.CacheStats() }

// TimedSource is a SampleSource that can report per-read modeled latency
// (the simulated PFF/CFF readers implement it).
type TimedSource interface {
	core.SampleSource
	ReadSampleTimed(id int64) (*graph.Graph, time.Duration, error)
}

// SourceLoader serves batches by reading each sample directly from a
// storage backend — the PFF/CFF baseline path: every batch goes back to the
// (simulated or real) filesystem.
type SourceLoader struct {
	Source core.SampleSource
}

// Len returns the dataset size.
func (l *SourceLoader) Len() int { return l.Source.Len() }

// LoadBatch implements Loader, reporting per-sample latency when the
// backend supports it.
func (l *SourceLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	out := make([]*graph.Graph, len(ids))
	var lat []time.Duration
	timed, hasTiming := l.Source.(TimedSource)
	if hasTiming {
		lat = make([]time.Duration, len(ids))
	}
	for i, id := range ids {
		if hasTiming {
			g, d, err := timed.ReadSampleTimed(id)
			if err != nil {
				return nil, nil, err
			}
			out[i] = g
			lat[i] = d
			continue
		}
		g, err := l.Source.ReadSample(id)
		if err != nil {
			return nil, nil, err
		}
		out[i] = g
	}
	return out, lat, nil
}
