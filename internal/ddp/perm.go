package ddp

import (
	"fmt"
	"math/bits"
)

// Permutation is a seeded pseudorandom permutation of [0, n) with O(1)
// memory and O(1) expected Apply time, built from a 4-round Feistel network
// with cycle-walking.
//
// Why not Fisher-Yates? Every rank of a DDP job derives the *same* epoch
// permutation; materializing it costs O(n) per rank. In a real MPI job that
// is a few megabytes per process and irrelevant — but this runtime
// simulates up to 1536 ranks inside one process, where 1536 copies of a
// 200k-entry permutation is gigabytes. A format-preserving permutation
// gives every rank random access to the same shuffle for free.
type Permutation struct {
	n        int64
	halfBits uint
	keys     [4]uint64
}

// NewPermutation builds the permutation of [0, n) for a seed. It panics on
// non-positive n (a programming error).
func NewPermutation(n int64, seed uint64) Permutation {
	if n <= 0 {
		panic(fmt.Sprintf("ddp: permutation over %d elements", n))
	}
	// Feistel domain: the smallest even-bit-width power of two >= n.
	width := bits.Len64(uint64(n - 1))
	if width == 0 {
		width = 1
	}
	if width%2 == 1 {
		width++
	}
	p := Permutation{n: n, halfBits: uint(width / 2)}
	// Derive round keys from the seed (SplitMix64 steps).
	z := seed
	for i := range p.keys {
		z += 0x9E3779B97F4A7C15
		k := z
		k = (k ^ (k >> 30)) * 0xBF58476D1CE4E5B9
		k = (k ^ (k >> 27)) * 0x94D049BB133111EB
		p.keys[i] = k ^ (k >> 31)
	}
	return p
}

// Len returns the permutation's domain size.
func (p Permutation) Len() int64 { return p.n }

// round is the Feistel round function: a cheap keyed mixer.
func round(x, key uint64) uint64 {
	x ^= key
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// Apply maps i to its shuffled position. It panics if i is outside [0, n).
func (p Permutation) Apply(i int64) int64 {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("ddp: permutation index %d out of [0,%d)", i, p.n))
	}
	mask := (uint64(1) << p.halfBits) - 1
	v := uint64(i)
	for {
		// One encryption pass over the power-of-two domain.
		l := v >> p.halfBits
		r := v & mask
		for _, key := range p.keys {
			l, r = r, l^(round(r, key)&mask)
		}
		v = l<<p.halfBits | r
		// Cycle-walk: if the image fell outside [0, n), encrypt again. The
		// domain is < 4n, so this terminates in O(1) expected steps.
		if int64(v) < p.n {
			return int64(v)
		}
	}
}

// IDs is random access to a sequence of sample ids. Implementations are
// cheap views — no materialized slices.
type IDs interface {
	Len() int
	At(i int) int64
}

// SliceIDs adapts a concrete slice to the IDs interface.
type SliceIDs []int64

// Len implements IDs.
func (s SliceIDs) Len() int { return len(s) }

// At implements IDs.
func (s SliceIDs) At(i int) int64 { return s[i] }

// permView is the composition perm → base: element i is
// base.At(perm.Apply(off + i)).
type permView struct {
	base IDs
	perm Permutation
	off  int64
	n    int
}

func (v permView) Len() int { return v.n }

func (v permView) At(i int) int64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("ddp: view index %d out of [0,%d)", i, v.n))
	}
	return v.base.At(int(v.perm.Apply(v.off + int64(i))))
}

// rangeIDs is the identity view over [0, n).
type rangeIDs int

func (r rangeIDs) Len() int       { return int(r) }
func (r rangeIDs) At(i int) int64 { return int64(i) }

// subView is a contiguous window of another view.
type subView struct {
	base    IDs
	off, nn int
}

func (v subView) Len() int       { return v.nn }
func (v subView) At(i int) int64 { return v.base.At(v.off + i) }

// Collect materializes a view (test and small-scale convenience).
func Collect(v IDs) []int64 {
	out := make([]int64, v.Len())
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}
