package ddp

import (
	"fmt"
	"sync/atomic"
	"time"

	"ddstore/internal/graph"
	"ddstore/internal/wire"
)

// PrefetchLoader wraps a Loader with a background worker goroutine that
// loads upcoming batches while the consumer trains on the current one —
// the role PyTorch's DataLoader workers play in the paper's stack.
//
// Because the global-shuffle sampler is deterministic, the trainer can
// Enqueue future batches' ids ahead of time; LoadBatch then returns the
// prefetched result when the ids match (and falls back to a synchronous
// load when they do not).
//
// PrefetchLoader is for real-time execution (real files, TCP transport).
// The simulated-cluster trainer models CPU/GPU overlap analytically on the
// virtual clocks instead, where a real background goroutine would charge
// costs out of order.
type PrefetchLoader struct {
	inner Loader
	reqs  chan []int64
	out   chan prefetched
	done  chan struct{}
	// outstanding counts enqueued batches not yet consumed, so LoadBatch
	// knows whether waiting on the worker can ever produce a result.
	outstanding atomic.Int64

	// pending stashes prefetched batches that arrived before their request
	// (only LoadBatch — a single consumer — touches these). Without it, one
	// out-of-order request cascades: every later in-flight batch mismatches
	// its request too and the whole queue degrades to synchronous loads.
	pending      map[string]prefetched
	pendingOrder []string // insertion order, for capped eviction
	pendingCap   int
}

type prefetched struct {
	ids     []int64
	graphs  []*graph.Graph
	lats    []time.Duration
	loadErr error
}

// NewPrefetchLoader starts a prefetching wrapper with the given queue
// depth (≥1). Call Close when done.
func NewPrefetchLoader(inner Loader, depth int) *PrefetchLoader {
	if depth < 1 {
		depth = 1
	}
	pendingCap := 2 * depth
	if pendingCap < 4 {
		pendingCap = 4
	}
	p := &PrefetchLoader{
		inner:      inner,
		reqs:       make(chan []int64, depth),
		out:        make(chan prefetched, depth),
		done:       make(chan struct{}),
		pending:    make(map[string]prefetched),
		pendingCap: pendingCap,
	}
	go func() {
		defer close(p.out)
		for {
			select {
			case <-p.done:
				return
			case ids, ok := <-p.reqs:
				if !ok {
					return
				}
				graphs, lats, err := inner.LoadBatch(ids)
				select {
				case p.out <- prefetched{ids: ids, graphs: graphs, lats: lats, loadErr: err}:
				case <-p.done:
					return
				}
			}
		}
	}()
	return p
}

// Len returns the dataset size.
func (p *PrefetchLoader) Len() int { return p.inner.Len() }

// Enqueue schedules a future batch. The ids slice is copied. Enqueue blocks
// if the queue is full (depth batches already pending).
func (p *PrefetchLoader) Enqueue(ids []int64) {
	cp := make([]int64, len(ids))
	copy(cp, ids)
	select {
	case p.reqs <- cp:
		p.outstanding.Add(1)
	case <-p.done:
	}
}

// LoadBatch returns the prefetched batch for ids. Results that arrive for
// a different request than the current one are stashed in an ids-keyed map
// (capped; oldest evicted) instead of discarded, so a single out-of-order
// request no longer cascades into synchronous loads for every batch behind
// it. When ids were never enqueued, LoadBatch drains the in-flight results
// into the stash and loads synchronously. LoadBatch is a single-consumer
// API: call it from one goroutine.
func (p *PrefetchLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	key := idsKey(ids)
	if res, ok := p.pending[key]; ok {
		delete(p.pending, key)
		for i, k := range p.pendingOrder {
			if k == key {
				p.pendingOrder = append(p.pendingOrder[:i], p.pendingOrder[i+1:]...)
				break
			}
		}
		return res.graphs, res.lats, res.loadErr
	}
	for p.outstanding.Load() > 0 {
		select {
		case res, ok := <-p.out:
			if !ok {
				return nil, nil, fmt.Errorf("ddp: prefetch loader closed")
			}
			p.outstanding.Add(-1)
			if sameIDs(res.ids, ids) {
				return res.graphs, res.lats, res.loadErr
			}
			p.stash(res)
		case <-p.done:
			return nil, nil, fmt.Errorf("ddp: prefetch loader closed")
		}
	}
	// Never enqueued (or evicted): plain synchronous load.
	return p.inner.LoadBatch(ids)
}

// stash keeps an out-of-order prefetched result for its future request,
// evicting the oldest stashed batch beyond the cap.
func (p *PrefetchLoader) stash(res prefetched) {
	key := idsKey(res.ids)
	if _, ok := p.pending[key]; !ok {
		p.pendingOrder = append(p.pendingOrder, key)
	}
	p.pending[key] = res
	if len(p.pendingOrder) > p.pendingCap {
		oldest := p.pendingOrder[0]
		p.pendingOrder = p.pendingOrder[1:]
		delete(p.pending, oldest)
	}
}

// idsKey encodes a batch's ids as a map key.
func idsKey(ids []int64) string {
	return string(wire.AppendIDs(make([]byte, 0, wire.IDsSize(len(ids))), ids))
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close stops the worker. Pending results are discarded.
func (p *PrefetchLoader) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}
