package ddp

import (
	"fmt"
	"sync/atomic"
	"time"

	"ddstore/internal/graph"
)

// PrefetchLoader wraps a Loader with a background worker goroutine that
// loads upcoming batches while the consumer trains on the current one —
// the role PyTorch's DataLoader workers play in the paper's stack.
//
// Because the global-shuffle sampler is deterministic, the trainer can
// Enqueue future batches' ids ahead of time; LoadBatch then returns the
// prefetched result when the ids match (and falls back to a synchronous
// load when they do not).
//
// PrefetchLoader is for real-time execution (real files, TCP transport).
// The simulated-cluster trainer models CPU/GPU overlap analytically on the
// virtual clocks instead, where a real background goroutine would charge
// costs out of order.
type PrefetchLoader struct {
	inner Loader
	reqs  chan []int64
	out   chan prefetched
	done  chan struct{}
	// outstanding counts enqueued batches not yet consumed, so LoadBatch
	// knows whether waiting on the worker can ever produce a result.
	outstanding atomic.Int64
}

type prefetched struct {
	ids     []int64
	graphs  []*graph.Graph
	lats    []time.Duration
	loadErr error
}

// NewPrefetchLoader starts a prefetching wrapper with the given queue
// depth (≥1). Call Close when done.
func NewPrefetchLoader(inner Loader, depth int) *PrefetchLoader {
	if depth < 1 {
		depth = 1
	}
	p := &PrefetchLoader{
		inner: inner,
		reqs:  make(chan []int64, depth),
		out:   make(chan prefetched, depth),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(p.out)
		for {
			select {
			case <-p.done:
				return
			case ids, ok := <-p.reqs:
				if !ok {
					return
				}
				graphs, lats, err := inner.LoadBatch(ids)
				select {
				case p.out <- prefetched{ids: ids, graphs: graphs, lats: lats, loadErr: err}:
				case <-p.done:
					return
				}
			}
		}
	}()
	return p
}

// Len returns the dataset size.
func (p *PrefetchLoader) Len() int { return p.inner.Len() }

// Enqueue schedules a future batch. The ids slice is copied. Enqueue blocks
// if the queue is full (depth batches already pending).
func (p *PrefetchLoader) Enqueue(ids []int64) {
	cp := make([]int64, len(ids))
	copy(cp, ids)
	select {
	case p.reqs <- cp:
		p.outstanding.Add(1)
	case <-p.done:
	}
}

// LoadBatch returns the next prefetched batch if its ids match the request
// (the normal case when the trainer enqueues in order); otherwise it loads
// synchronously.
func (p *PrefetchLoader) LoadBatch(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	if p.outstanding.Load() == 0 {
		// Nothing enqueued: plain synchronous load.
		return p.inner.LoadBatch(ids)
	}
	select {
	case res, ok := <-p.out:
		if !ok {
			return nil, nil, fmt.Errorf("ddp: prefetch loader closed")
		}
		p.outstanding.Add(-1)
		if sameIDs(res.ids, ids) {
			return res.graphs, res.lats, res.loadErr
		}
		// Out-of-order request: discard the stale result and load fresh.
		return p.inner.LoadBatch(ids)
	case <-p.done:
		return nil, nil, fmt.Errorf("ddp: prefetch loader closed")
	}
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close stops the worker. Pending results are discarded.
func (p *PrefetchLoader) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}
