package shardmap

import "fmt"

// Owner tokens carry the generation a fetch started under. The fetch
// engine's Plane interface speaks plain ints for owners, so the
// generation is packed into the token itself: the low memberBits hold
// the member index and the bits above hold the generation. FetchOwner
// unpacks the token and resolves the member against the generation the
// batch was planned under, which is what pins an in-flight fetch to its
// starting generation even if the map advances mid-flight.
//
// This replaces the old static replica*stride+member arithmetic that was
// recomputed inline in groupPlane.OwnerOf: tokens are now derived from
// the shard map generation, and round-trip exactly up to MaxMember and
// MaxGeneration.
const (
	memberBits = 20
	// MaxMember is the largest member index a token can carry (2^20-1
	// members — three orders of magnitude beyond any deployment here).
	MaxMember = 1<<memberBits - 1
	// MaxGeneration is the largest generation a token can carry. Tokens
	// are ints (≥ 63 usable bits on every supported platform), leaving
	// 43 generation bits: thousands of years of one rebalance per second.
	MaxGeneration = uint64(1)<<(63-memberBits) - 1
)

// PackOwner packs a generation and member index into an owner token.
func PackOwner(gen uint64, member int) (int, error) {
	if member < 0 || member > MaxMember {
		return 0, fmt.Errorf("shardmap: member index %d outside token range [0,%d]", member, MaxMember)
	}
	if gen == 0 || gen > MaxGeneration {
		return 0, fmt.Errorf("shardmap: generation %d outside token range [1,%d]", gen, MaxGeneration)
	}
	return int(gen<<memberBits) | member, nil
}

// UnpackOwner splits an owner token back into generation and member index.
func UnpackOwner(token int) (gen uint64, member int, err error) {
	if token < 0 {
		return 0, 0, fmt.Errorf("shardmap: negative owner token %d", token)
	}
	gen = uint64(token) >> memberBits
	member = token & MaxMember
	if gen == 0 {
		return 0, 0, fmt.Errorf("shardmap: owner token %d carries generation 0", token)
	}
	return gen, member, nil
}
