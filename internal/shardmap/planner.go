package shardmap

import (
	"fmt"
	"sort"
)

// Move is one chunk transfer the next generation requires: shard
// [Lo, Hi) must be copied to member To (an index into the NEXT map's
// member list). From is the member to pull it from — an index into the
// NEXT map's member list of a surviving current owner — or -1 when no
// current owner survives and the chunk must be re-read from the durable
// backing source.
type Move struct {
	Shard    int
	Lo, Hi   int64
	From, To int
	ToID     string
	FromID   string
}

// Planner derives the next generation from a membership change.
type Planner struct {
	// Width, when > 0, is the target replica width every shard is topped
	// up (or trimmed) to, clamped to the member count. 0 keeps each
	// shard's current width (clamped to the member count).
	Width int
}

// Next plans the generation after cur for the given member set, returning
// the new map (Gen = cur.Gen+1) and the chunk moves it requires. The plan
// is deterministic and minimizes moved chunks:
//
//  1. every shard keeps its surviving owners — a departed primary is
//     replaced by its first surviving replica before any data moves;
//  2. shards with no surviving owner are assigned to the least-loaded
//     members;
//  3. primaries move beyond that only as far as load balance requires
//     (every member within one shard of the mean), taking from the most
//     loaded members first;
//  4. owner lists are topped up to the target width with the least-loaded
//     non-owner members (each top-up is a data move: a new replica needs
//     the bytes), or trimmed from the tail (no data moves).
//
// Members carried over from cur are matched by Member.ID, so indexes may
// differ between the generations; Move indexes are all in next's space.
func (p Planner) Next(cur *Map, members []Member) (*Map, []Move, error) {
	if len(members) == 0 {
		return nil, nil, fmt.Errorf("shardmap: cannot plan a generation with no members")
	}
	next := &Map{Gen: cur.Gen + 1, Members: append([]Member(nil), members...)}
	if err := validateMembers(next.Members); err != nil {
		return nil, nil, err
	}

	// Remap current owners into next's member index space; departed
	// members drop out of every owner list.
	oldToNew := make([]int, len(cur.Members))
	for i := range cur.Members {
		oldToNew[i] = next.MemberIndex(cur.Members[i].ID)
	}
	next.Shards = make([]Shard, len(cur.Shards))
	load := make([]int, len(members)) // primaries per member
	for i, sh := range cur.Shards {
		owners := make([]int, 0, len(sh.Owners))
		for _, o := range sh.Owners {
			if ni := oldToNew[o]; ni >= 0 {
				owners = append(owners, ni)
			}
		}
		next.Shards[i] = Shard{Lo: sh.Lo, Hi: sh.Hi, Owners: owners}
		if len(owners) > 0 {
			load[owners[0]]++
		}
	}

	var moves []Move
	addMove := func(shard, to int) {
		sh := &next.Shards[shard]
		from := -1
		if len(sh.Owners) > 0 {
			from = sh.Owners[0]
		}
		mv := Move{Shard: shard, Lo: sh.Lo, Hi: sh.Hi, From: from, To: to, ToID: members[to].ID}
		if from >= 0 {
			mv.FromID = members[from].ID
		}
		moves = append(moves, mv)
	}
	// leastLoaded picks the member with the fewest primaries that is not
	// already an owner of shard i (lowest index on ties — deterministic).
	leastLoaded := func(i int) int {
		owned := make(map[int]bool, len(next.Shards[i].Owners))
		for _, o := range next.Shards[i].Owners {
			owned[o] = true
		}
		best := -1
		for mi := range members {
			if owned[mi] {
				continue
			}
			if best < 0 || load[mi] < load[best] {
				best = mi
			}
		}
		return best
	}

	// Orphaned shards (no surviving owner) go to the least-loaded members.
	for i := range next.Shards {
		if len(next.Shards[i].Owners) > 0 {
			continue
		}
		to := leastLoaded(i)
		addMove(i, to)
		next.Shards[i].Owners = []int{to}
		load[to]++
	}

	// Load balance, floor first: every member must end with at least
	// floor(nShards/n) primaries, so a joining member actually takes on
	// work instead of idling while everyone else sits under the ceiling.
	// Recipients steal from the most-loaded member's highest-index shards
	// (deterministic), preferring shards where the recipient already holds
	// a replica — those are promotions, not data moves.
	floor := len(next.Shards) / len(members)
	for {
		rec := -1
		for mi := range members {
			if load[mi] < floor && (rec < 0 || load[mi] < load[rec]) {
				rec = mi
			}
		}
		if rec < 0 {
			break
		}
		don := 0
		for mi := range members {
			if load[mi] > load[don] {
				don = mi
			}
		}
		if load[don] <= floor {
			break
		}
		shard := -1
		for i := len(next.Shards) - 1; i >= 0; i-- {
			if next.Shards[i].Owners[0] != don {
				continue
			}
			if containsOwner(next.Shards[i].Owners, rec) {
				shard = i // free promotion
				break
			}
			if shard < 0 {
				shard = i
			}
		}
		if shard < 0 {
			break
		}
		if !containsOwner(next.Shards[shard].Owners, rec) {
			addMove(shard, rec)
		}
		next.Shards[shard].Owners = promoteOwner(next.Shards[shard].Owners, rec)
		load[don]--
		load[rec]++
	}

	// Then the ceiling: shed primaries from members above ceil(nShards/n)
	// — the tightest ceiling every membership can satisfy — to members
	// below it, moving the highest-index shards first so the choice is
	// deterministic and repeat plans agree.
	ceiling := (len(next.Shards) + len(members) - 1) / len(members)
	for i := len(next.Shards) - 1; i >= 0; i-- {
		primary := next.Shards[i].Owners[0]
		if load[primary] <= ceiling {
			continue
		}
		to := leastLoaded(i)
		if to < 0 || load[to] >= ceiling {
			continue
		}
		// The new primary may already hold a replica of the shard — a
		// promotion, not a data move.
		if !containsOwner(next.Shards[i].Owners, to) {
			addMove(i, to)
		}
		next.Shards[i].Owners = promoteOwner(next.Shards[i].Owners, to)
		load[primary]--
		load[to]++
	}

	// Replica width: top up or trim every shard. Top-ups copy data; trims
	// drop the tail of the preference list and cost nothing.
	for i := range next.Shards {
		want := p.Width
		if want <= 0 {
			want = len(cur.Shards[i].Owners)
		}
		if want > len(members) {
			want = len(members)
		}
		if want < 1 {
			want = 1
		}
		sh := &next.Shards[i]
		for len(sh.Owners) < want {
			to := leastLoaded(i)
			if to < 0 {
				break
			}
			addMove(i, to)
			sh.Owners = append(sh.Owners, to)
		}
		if len(sh.Owners) > want {
			sh.Owners = sh.Owners[:want]
		}
	}

	if err := next.Validate(); err != nil {
		return nil, nil, err
	}
	sort.Slice(moves, func(a, b int) bool {
		if moves[a].Shard != moves[b].Shard {
			return moves[a].Shard < moves[b].Shard
		}
		return moves[a].To < moves[b].To
	})
	return next, moves, nil
}

// Diff returns the chunk moves required to go from cur to next: every
// (shard, owner) pair in next whose member (by ID) does not own the
// shard's range in cur. The shard geometry must match; Diff is the
// planner-independent way to meter "chunks moved" between two
// generations.
func Diff(cur, next *Map) ([]Move, error) {
	if len(cur.Shards) != len(next.Shards) {
		return nil, fmt.Errorf("shardmap: diff across different shard counts (%d vs %d)", len(cur.Shards), len(next.Shards))
	}
	var moves []Move
	for i := range next.Shards {
		ns, cs := &next.Shards[i], &cur.Shards[i]
		if ns.Lo != cs.Lo || ns.Hi != cs.Hi {
			return nil, fmt.Errorf("shardmap: shard %d geometry changed ([%d,%d) vs [%d,%d))", i, cs.Lo, cs.Hi, ns.Lo, ns.Hi)
		}
		curIDs := make(map[string]bool, len(cs.Owners))
		for _, o := range cs.Owners {
			curIDs[cur.Members[o].ID] = true
		}
		for _, o := range ns.Owners {
			id := next.Members[o].ID
			if curIDs[id] {
				continue
			}
			from, fromID := -1, ""
			for _, co := range cs.Owners {
				if ni := next.MemberIndex(cur.Members[co].ID); ni >= 0 {
					from, fromID = ni, cur.Members[co].ID
					break
				}
			}
			moves = append(moves, Move{Shard: i, Lo: ns.Lo, Hi: ns.Hi, From: from, To: o, ToID: id, FromID: fromID})
		}
	}
	return moves, nil
}

func validateMembers(members []Member) error {
	seen := make(map[string]bool, len(members))
	for i, m := range members {
		if m.ID == "" {
			return fmt.Errorf("shardmap: member %d has an empty ID", i)
		}
		if seen[m.ID] {
			return fmt.Errorf("shardmap: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
	}
	return nil
}

func containsOwner(owners []int, mi int) bool {
	for _, o := range owners {
		if o == mi {
			return true
		}
	}
	return false
}

// promoteOwner makes mi the primary, keeping the rest of the preference
// order stable.
func promoteOwner(owners []int, mi int) []int {
	out := make([]int, 0, len(owners)+1)
	out = append(out, mi)
	for _, o := range owners {
		if o != mi {
			out = append(out, o)
		}
	}
	return out
}
