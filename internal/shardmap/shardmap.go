// Package shardmap is the versioned ownership spine of the elastic data
// plane. DDStore's original owner arithmetic was frozen at startup: a
// static rank count turned a sample id into an owner, so a rank that
// joined, left, or died mid-run either stranded its chunks or forced a
// full restart. This package replaces that arithmetic with an explicit,
// epoch-numbered shard map:
//
//   - a Map is one generation of ownership: the member list, plus the
//     sample-id keyspace range-split into contiguous shards, each with an
//     ordered owner list (Owners[0] is the primary; the list's length is
//     that shard's replica width w, adjustable per shard);
//   - a Planner derives the next generation from a membership change,
//     moving as few shards as possible — shards whose owner survives stay
//     put, a dead primary is replaced by a surviving replica before any
//     data moves, and only orphaned shards plus the minimum needed for
//     load balance are reassigned;
//   - a Store holds the live generation and a bounded history, so a fetch
//     that started under generation g can keep resolving against g while
//     g+1 is being migrated, and publishes every applied generation to
//     subscribers.
//
// Maps are immutable once built (the Planner and Store copy, never
// mutate), so a *Map handed out by Store.Current or Store.At is safe to
// read from any goroutine forever.
package shardmap

import (
	"fmt"
	"sort"
)

// Member is one owner process of the cluster. ID is the stable identity
// membership transitions are keyed on (two generations refer to the same
// process iff the IDs match); Addr is where its data plane listens.
type Member struct {
	ID   string
	Addr string
}

// Shard is one contiguous range [Lo, Hi) of sample ids and its ordered
// owner list. Owners holds indexes into the Map's member list; Owners[0]
// is the primary, and the slice length is this shard's replica width.
type Shard struct {
	Lo, Hi int64
	Owners []int
}

// Width returns the shard's replica width.
func (s *Shard) Width() int { return len(s.Owners) }

// Choice returns the member index of id's k-th choice owner: the owner
// list rotated by id's preference slot, so k = 0 is the preferred owner
// and successive k values walk the remaining replicas in a stable order.
// Failover paths iterate k instead of re-deriving replica arithmetic.
func (s *Shard) Choice(id int64, k int) int {
	w := len(s.Owners)
	return s.Owners[(preferenceIndex(id, w)+k)%w]
}

// Map is one generation of cluster ownership. The shards are sorted by Lo
// and tile a contiguous keyspace. A Map is immutable after construction.
type Map struct {
	Gen     uint64
	Members []Member
	Shards  []Shard
}

// Range returns the keyspace [lo, hi) the map covers.
func (m *Map) Range() (lo, hi int64) {
	if len(m.Shards) == 0 {
		return 0, 0
	}
	return m.Shards[0].Lo, m.Shards[len(m.Shards)-1].Hi
}

// ShardIndex returns the index of the shard holding id, or -1.
func (m *Map) ShardIndex(id int64) int {
	n := len(m.Shards)
	if n == 0 || id < m.Shards[0].Lo || id >= m.Shards[n-1].Hi {
		return -1
	}
	i := sort.Search(n, func(i int) bool { return m.Shards[i].Hi > id })
	if i == n || id < m.Shards[i].Lo {
		return -1
	}
	return i
}

// ShardOf returns the shard holding id.
func (m *Map) ShardOf(id int64) (*Shard, error) {
	i := m.ShardIndex(id)
	if i < 0 {
		lo, hi := m.Range()
		return nil, fmt.Errorf("shardmap: sample %d outside keyspace [%d,%d) (generation %d)", id, lo, hi, m.Gen)
	}
	return &m.Shards[i], nil
}

// OwnerOf returns the member index of id's primary owner.
func (m *Map) OwnerOf(id int64) (int, error) {
	sh, err := m.ShardOf(id)
	if err != nil {
		return 0, err
	}
	return sh.Owners[0], nil
}

// PreferredOwner returns the member index of id's preferred owner: the
// replicas of id's shard are rotated by id so a population of ids spreads
// read load over the shard's whole owner list, the same way the static
// replica groups preferred replica id%r.
func (m *Map) PreferredOwner(id int64) (int, error) {
	sh, err := m.ShardOf(id)
	if err != nil {
		return 0, err
	}
	return sh.Owners[preferenceIndex(id, len(sh.Owners))], nil
}

// preferenceIndex rotates replica preference by id (non-negative even for
// pathological ids).
func preferenceIndex(id int64, width int) int {
	p := int(id % int64(width))
	if p < 0 {
		p += width
	}
	return p
}

// MemberIndex returns the index of the member with the given ID, or -1.
func (m *Map) MemberIndex(id string) int {
	for i := range m.Members {
		if m.Members[i].ID == id {
			return i
		}
	}
	return -1
}

// OwnedBy reports whether the member at index mi owns id under this
// generation (primary or replica).
func (m *Map) OwnedBy(id int64, mi int) bool {
	sh, err := m.ShardOf(id)
	if err != nil {
		return false
	}
	for _, o := range sh.Owners {
		if o == mi {
			return true
		}
	}
	return false
}

// Clone returns a deep copy safe to mutate while building the next
// generation.
func (m *Map) Clone() *Map {
	c := &Map{Gen: m.Gen, Members: append([]Member(nil), m.Members...)}
	c.Shards = make([]Shard, len(m.Shards))
	for i, sh := range m.Shards {
		c.Shards[i] = Shard{Lo: sh.Lo, Hi: sh.Hi, Owners: append([]int(nil), sh.Owners...)}
	}
	return c
}

// Validate checks the structural invariants: at least one member and one
// shard, shards sorted and tiling a contiguous non-empty keyspace, every
// shard with at least one owner, all owner indexes in range with no
// duplicates inside one shard, and distinct member IDs.
func (m *Map) Validate() error {
	if m.Gen == 0 {
		return fmt.Errorf("shardmap: generation 0 is reserved (generations start at 1)")
	}
	if len(m.Members) == 0 {
		return fmt.Errorf("shardmap: map has no members")
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("shardmap: map has no shards")
	}
	seen := make(map[string]bool, len(m.Members))
	for i, mem := range m.Members {
		if mem.ID == "" {
			return fmt.Errorf("shardmap: member %d has an empty ID", i)
		}
		if seen[mem.ID] {
			return fmt.Errorf("shardmap: duplicate member ID %q", mem.ID)
		}
		seen[mem.ID] = true
	}
	for i, sh := range m.Shards {
		if sh.Hi <= sh.Lo {
			return fmt.Errorf("shardmap: shard %d has empty range [%d,%d)", i, sh.Lo, sh.Hi)
		}
		if i > 0 && sh.Lo != m.Shards[i-1].Hi {
			return fmt.Errorf("shardmap: gap between shard %d (ends %d) and shard %d (starts %d)",
				i-1, m.Shards[i-1].Hi, i, sh.Lo)
		}
		if len(sh.Owners) == 0 {
			return fmt.Errorf("shardmap: shard %d [%d,%d) has no owners", i, sh.Lo, sh.Hi)
		}
		inShard := make(map[int]bool, len(sh.Owners))
		for _, o := range sh.Owners {
			if o < 0 || o >= len(m.Members) {
				return fmt.Errorf("shardmap: shard %d owner index %d outside member list of %d", i, o, len(m.Members))
			}
			if inShard[o] {
				return fmt.Errorf("shardmap: shard %d lists member %d twice", i, o)
			}
			inShard[o] = true
		}
	}
	return nil
}

// UniformOptions shape the initial generation built by Uniform.
type UniformOptions struct {
	// ShardsPerMember is how many shards the keyspace is split into per
	// member (default 8). More shards mean finer-grained rebalances at the
	// cost of a larger map.
	ShardsPerMember int
	// Width is the replica width of every shard (default 1, clamped to the
	// member count). Owners beyond the primary are the next members cyclic.
	Width int
}

// Uniform builds generation 1: the keyspace [lo, hi) range-split into
// contiguous shards assigned round-robin-contiguously over the members.
// Shard k's primary is member k*len(members)/nShards, so each member owns
// one contiguous run of shards — the same balanced striping the static
// chunkStarts arithmetic produced, now as an explicit versioned map.
func Uniform(lo, hi int64, members []Member, opts UniformOptions) (*Map, error) {
	if hi <= lo {
		return nil, fmt.Errorf("shardmap: empty keyspace [%d,%d)", lo, hi)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("shardmap: no members")
	}
	per := opts.ShardsPerMember
	if per <= 0 {
		per = 8
	}
	width := opts.Width
	if width <= 0 {
		width = 1
	}
	if width > len(members) {
		width = len(members)
	}
	nShards := per * len(members)
	if int64(nShards) > hi-lo {
		nShards = int(hi - lo)
	}
	m := &Map{Gen: 1, Members: append([]Member(nil), members...)}
	total := hi - lo
	cursor := lo
	for k := 0; k < nShards; k++ {
		// Balanced integer split: shard k covers total/nShards samples,
		// the first total%nShards shards one extra.
		size := total / int64(nShards)
		if int64(k) < total%int64(nShards) {
			size++
		}
		primary := k * len(members) / nShards
		owners := make([]int, 0, width)
		for r := 0; r < width; r++ {
			owners = append(owners, (primary+r)%len(members))
		}
		m.Shards = append(m.Shards, Shard{Lo: cursor, Hi: cursor + size, Owners: owners})
		cursor += size
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
