package shardmap

import (
	"reflect"
	"strings"
	"testing"
)

// ownersByID maps every shard to its owner IDs, for cross-generation
// comparisons independent of member index shuffles.
func ownersByID(m *Map) [][]string {
	out := make([][]string, len(m.Shards))
	for i, sh := range m.Shards {
		for _, o := range sh.Owners {
			out[i] = append(out[i], m.Members[o].ID)
		}
	}
	return out
}

func primaryLoad(m *Map) map[string]int {
	load := map[string]int{}
	for _, sh := range m.Shards {
		load[m.Members[sh.Owners[0]].ID]++
	}
	return load
}

func TestPlannerJoinMovesMinimally(t *testing.T) {
	cur, err := Uniform(0, 1200, members("a", "b"), UniformOptions{ShardsPerMember: 3, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	next, moves, err := Planner{Width: 1}.Next(cur, members("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if next.Gen != 2 {
		t.Fatalf("Gen = %d, want 2", next.Gen)
	}
	// 6 shards over 3 members: ceiling 2, so c must take exactly 2 shards
	// and nothing else may move.
	if len(moves) != 2 {
		t.Fatalf("moves = %d (%+v), want 2", len(moves), moves)
	}
	load := primaryLoad(next)
	for _, id := range []string{"a", "b", "c"} {
		if load[id] != 2 {
			t.Fatalf("member %s load = %d, want 2 (load: %v)", id, load[id], load)
		}
	}
	// Every move has a surviving source and targets c.
	for _, mv := range moves {
		if mv.ToID != "c" {
			t.Fatalf("move to %s, want c", mv.ToID)
		}
		if mv.From < 0 || (mv.FromID != "a" && mv.FromID != "b") {
			t.Fatalf("move from %q (%d), want a surviving owner", mv.FromID, mv.From)
		}
	}
	// Diff agrees with the planner's move count.
	dmoves, err := Diff(cur, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(dmoves) != len(moves) {
		t.Fatalf("Diff found %d moves, planner reported %d", len(dmoves), len(moves))
	}
}

func TestPlannerLeaveReplicaPromotionZeroCopiesAtWidth2(t *testing.T) {
	// Width 2 over 3 members: every shard has a replica. When one member
	// leaves, its primaries promote their surviving replica — the only
	// data moves are width top-ups, never primary re-copies.
	cur, err := Uniform(0, 900, members("a", "b", "c"), UniformOptions{ShardsPerMember: 2, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	next, moves, err := Planner{Width: 2}.Next(cur, members("a", "c"))
	if err != nil {
		t.Fatal(err)
	}
	// Every shard previously involving b must now be owned by a and c,
	// both of which already held a copy (either as primary or replica) —
	// except width top-ups where only one survivor held the data.
	for i, ids := range ownersByID(next) {
		for _, id := range ids {
			if id == "b" {
				t.Fatalf("shard %d still owned by departed member b", i)
			}
		}
		if len(ids) != 2 {
			t.Fatalf("shard %d width = %d, want 2", i, len(ids))
		}
	}
	// Promotions are free; only genuine top-ups (one survivor) move data.
	for _, mv := range moves {
		if mv.From < 0 {
			t.Fatalf("move %+v has no surviving source despite width 2", mv)
		}
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlannerCrashOrphansFallBackToSource(t *testing.T) {
	// Width 1: a crash orphans the dead member's shards entirely. The
	// planner must still produce a valid map, with From = -1 (re-read
	// from the durable backing source).
	cur, err := Uniform(0, 100, members("a", "b"), UniformOptions{ShardsPerMember: 2, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	next, moves, err := Planner{Width: 1}.Next(cur, members("a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("moves = %d, want 2 (b's two shards)", len(moves))
	}
	for _, mv := range moves {
		if mv.From != -1 || mv.FromID != "" {
			t.Fatalf("orphan move %+v should have From = -1", mv)
		}
		if mv.ToID != "a" {
			t.Fatalf("orphan move to %s, want a", mv.ToID)
		}
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlannerStableWhenNothingChanges(t *testing.T) {
	cur, err := Uniform(0, 640, members("a", "b", "c", "d"), UniformOptions{ShardsPerMember: 4, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	next, moves, err := Planner{Width: 2}.Next(cur, members("a", "b", "c", "d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 0 {
		t.Fatalf("same membership produced %d moves: %+v", len(moves), moves)
	}
	if !reflect.DeepEqual(ownersByID(cur), ownersByID(next)) {
		t.Fatal("same membership changed ownership")
	}
}

func TestPlannerDeterministic(t *testing.T) {
	cur, err := Uniform(0, 5000, members("a", "b", "c"), UniformOptions{ShardsPerMember: 5, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	n1, m1, err := Planner{Width: 2}.Next(cur, members("a", "c", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	n2, m2, err := Planner{Width: 2}.Next(cur, members("a", "c", "d", "e"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ownersByID(n1), ownersByID(n2)) || !reflect.DeepEqual(m1, m2) {
		t.Fatal("planner is not deterministic")
	}
}

func TestPlannerWidthChange(t *testing.T) {
	cur, err := Uniform(0, 300, members("a", "b", "c"), UniformOptions{ShardsPerMember: 2, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Widen 1 -> 2: every shard gains a replica; each gain is a move.
	next, moves, err := Planner{Width: 2}.Next(cur, members("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != len(cur.Shards) {
		t.Fatalf("widening moved %d chunks, want %d", len(moves), len(cur.Shards))
	}
	for _, sh := range next.Shards {
		if len(sh.Owners) != 2 {
			t.Fatalf("width = %d, want 2", len(sh.Owners))
		}
	}
	// Narrow back 2 -> 1: trims are free.
	narrow, moves2, err := Planner{Width: 1}.Next(next, members("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	if len(moves2) != 0 {
		t.Fatalf("narrowing moved %d chunks, want 0", len(moves2))
	}
	for _, sh := range narrow.Shards {
		if len(sh.Owners) != 1 {
			t.Fatalf("width = %d, want 1", len(sh.Owners))
		}
	}
}

func TestPlannerLoadBalanceCeiling(t *testing.T) {
	// Start grossly imbalanced: one member owns everything.
	m := &Map{Gen: 1, Members: members("a", "b", "c")}
	for i := int64(0); i < 9; i++ {
		m.Shards = append(m.Shards, Shard{Lo: i * 10, Hi: (i + 1) * 10, Owners: []int{0}})
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	next, _, err := Planner{Width: 1}.Next(m, members("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	load := primaryLoad(next)
	for id, n := range load {
		if n > 3 {
			t.Fatalf("member %s load %d exceeds ceiling 3 (load: %v)", id, n, load)
		}
	}
}

func TestPlannerErrors(t *testing.T) {
	cur, err := Uniform(0, 10, members("a"), UniformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Planner{}).Next(cur, nil); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, _, err := (Planner{}).Next(cur, members("x", "x")); err == nil {
		t.Fatal("duplicate member IDs accepted")
	}
}

func TestDiffGeometryMismatch(t *testing.T) {
	a, err := Uniform(0, 100, members("a"), UniformOptions{ShardsPerMember: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(0, 100, members("a"), UniformOptions{ShardsPerMember: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(a, b); err == nil || !strings.Contains(err.Error(), "shard counts") {
		t.Fatalf("Diff err = %v, want shard-count mismatch", err)
	}
	c := a.Clone()
	c.Shards[0].Hi++
	c.Shards[1].Lo++
	if _, err := Diff(a, c); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("Diff err = %v, want geometry mismatch", err)
	}
}
