package shardmap

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func newTestStore(t *testing.T, n int) *Store {
	t.Helper()
	m, err := Uniform(0, 100, members("a", "b"), UniformOptions{ShardsPerMember: 2, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(m, n)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func advance(t *testing.T, st *Store, mems []Member) *Map {
	t.Helper()
	next, _, err := Planner{Width: 1}.Next(st.Current(), mems)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(next); err != nil {
		t.Fatal(err)
	}
	return next
}

func TestStoreApplyAndHistory(t *testing.T) {
	st := newTestStore(t, 2)
	if st.Generation() != 1 {
		t.Fatalf("Generation = %d, want 1", st.Generation())
	}
	g2 := advance(t, st, members("a", "b", "c"))
	if st.Current() != g2 || st.Generation() != 2 {
		t.Fatalf("current gen = %d, want 2", st.Generation())
	}
	if st.At(1) == nil || st.At(2) != g2 {
		t.Fatal("history should hold generations 1 and 2")
	}
	advance(t, st, members("a", "b", "c", "d"))
	// keep=2: generation 1 aged out.
	if st.At(1) != nil {
		t.Fatal("generation 1 should have aged out of a 2-deep history")
	}
	if st.At(2) == nil || st.At(3) == nil {
		t.Fatal("generations 2 and 3 should be resolvable")
	}
	if st.At(99) != nil {
		t.Fatal("future generation resolvable")
	}
}

func TestStoreApplyRejectsGaps(t *testing.T) {
	st := newTestStore(t, 4)
	skip := st.Current().Clone()
	skip.Gen = 5
	if err := st.Apply(skip); err == nil || !strings.Contains(err.Error(), "advance by exactly 1") {
		t.Fatalf("gap apply err = %v", err)
	}
	same := st.Current().Clone()
	if err := st.Apply(same); err == nil {
		t.Fatal("same-generation apply accepted")
	}
	bad := st.Current().Clone()
	bad.Gen++
	bad.Shards[0].Owners = nil
	if err := st.Apply(bad); err == nil {
		t.Fatal("invalid map applied")
	}
}

func TestStoreApplyIfNewer(t *testing.T) {
	st := newTestStore(t, 4)
	// A refresh can jump multiple generations forward.
	jump := st.Current().Clone()
	jump.Gen = 7
	ok, err := st.ApplyIfNewer(jump)
	if err != nil || !ok {
		t.Fatalf("ApplyIfNewer = %v, %v; want installed", ok, err)
	}
	if st.Generation() != 7 {
		t.Fatalf("Generation = %d, want 7", st.Generation())
	}
	// ...but never backward or sideways.
	old := st.Current().Clone()
	old.Gen = 3
	if ok, err := st.ApplyIfNewer(old); err != nil || ok {
		t.Fatalf("stale refresh installed (ok=%v err=%v)", ok, err)
	}
	if ok, err := st.ApplyIfNewer(st.Current().Clone()); err != nil || ok {
		t.Fatal("same-generation refresh installed")
	}
	bad := st.Current().Clone()
	bad.Gen++
	bad.Members = nil
	if _, err := st.ApplyIfNewer(bad); err == nil {
		t.Fatal("invalid refresh accepted")
	}
}

func TestStoreSubscribe(t *testing.T) {
	st := newTestStore(t, 4)
	ch, cancel := st.Subscribe()
	g2 := advance(t, st, members("a", "b", "c"))
	select {
	case got := <-ch:
		if got != g2 {
			t.Fatalf("subscriber got gen %d, want %d", got.Gen, g2.Gen)
		}
	default:
		t.Fatal("subscriber channel empty after apply")
	}
	cancel()
	advance(t, st, members("a", "b"))
	select {
	case <-ch:
		t.Fatal("cancelled subscriber still receiving")
	default:
	}
}

func TestStoreSlowSubscriberNeverBlocksApply(t *testing.T) {
	st := newTestStore(t, 16)
	ch, cancel := st.Subscribe()
	defer cancel()
	mems := [][]Member{
		members("a", "b", "c"), members("a", "b"), members("a", "b", "c"),
		members("a", "b"), members("a", "b", "c"), members("a", "b"),
	}
	for _, ms := range mems { // more applies than channel buffer; must not block
		advance(t, st, ms)
	}
	// Drain whatever made it; the latest state is always via Current.
	n := 0
	for {
		select {
		case <-ch:
			n++
			continue
		default:
		}
		break
	}
	if n == 0 {
		t.Fatal("subscriber received nothing")
	}
	if st.Generation() != 7 {
		t.Fatalf("Generation = %d, want 7", st.Generation())
	}
}

func TestStoreOnApplyHook(t *testing.T) {
	st := newTestStore(t, 4)
	var gens []uint64
	var movedTotal int
	st.OnApply = func(m *Map, moved int) {
		gens = append(gens, m.Gen)
		movedTotal += moved
	}
	advance(t, st, members("a", "b", "c"))
	if len(gens) != 1 || gens[0] != 2 {
		t.Fatalf("hook gens = %v, want [2]", gens)
	}
	if movedTotal == 0 {
		t.Fatal("join should have reported moved chunks")
	}
}

func TestStoreEncodedCachedPerGeneration(t *testing.T) {
	st := newTestStore(t, 4)
	b1, err := st.Encoded()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := st.Encoded()
	if err != nil {
		t.Fatal(err)
	}
	if &b1[0] != &b2[0] {
		t.Fatal("Encoded not cached within a generation")
	}
	m, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != st.Generation() {
		t.Fatalf("decoded gen %d, want %d", m.Gen, st.Generation())
	}
	advance(t, st, members("a", "b", "c"))
	b3, err := st.Encoded()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("Encoded not invalidated across generations")
	}
}

func TestNewStoreRejectsInvalid(t *testing.T) {
	if _, err := NewStore(&Map{Gen: 1}, 4); err == nil {
		t.Fatal("invalid seed map accepted")
	}
}

func TestStoreConcurrentReadersAndAppliers(t *testing.T) {
	st := newTestStore(t, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := st.Current()
				if _, err := m.OwnerOf(5); err != nil {
					t.Error(err)
					return
				}
				st.At(m.Gen)
				if _, err := st.Encoded(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			advance(t, st, members("a", "b", "c"))
		} else {
			advance(t, st, members("a", "b"))
		}
	}
	close(stop)
	wg.Wait()
}
