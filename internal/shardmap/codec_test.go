package shardmap

import (
	"reflect"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	m, err := Uniform(0, 5000, members("alpha", "beta", "gamma"), UniformOptions{ShardsPerMember: 6, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Gen = 17
	b, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", m, got)
	}
}

func TestEncodeRejectsInvalidMap(t *testing.T) {
	if _, err := (&Map{Gen: 1}).Encode(); err == nil {
		t.Fatal("invalid map encoded")
	}
}

func TestDecodeRejections(t *testing.T) {
	m, err := Uniform(0, 100, members("a", "b"), UniformOptions{ShardsPerMember: 2, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	good, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); err == nil {
			t.Fatal("empty input decoded")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 99
		if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 5, 10, len(good) / 2, len(good) - 1} {
			if _, err := Decode(good[:cut]); err == nil {
				t.Fatalf("truncation at %d decoded", cut)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		b := append(append([]byte(nil), good...), 0)
		if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupt owner index", func(t *testing.T) {
		// Flipping high bytes in the shard section produces owner indexes
		// outside the member list; Validate must catch it.
		b := append([]byte(nil), good...)
		b[len(b)-1] = 0xFF
		b[len(b)-2] = 0xFF
		if _, err := Decode(b); err == nil {
			t.Fatal("corrupt owners decoded")
		}
	})
	t.Run("huge member count", func(t *testing.T) {
		b := append([]byte(nil), good[:9]...) // version + gen
		b = append(b, 0xFF, 0xFF, 0xFF, 0xFF) // member count ~4B
		if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "members exceeds") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("huge string", func(t *testing.T) {
		b := append([]byte(nil), good[:9]...)
		b = append(b, 1, 0, 0, 0) // 1 member
		b = append(b, 0xFF, 0xFF) // ID length 65535 > maxCodecString
		if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "string") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestEncodeRejectsOversizeStrings(t *testing.T) {
	m, err := Uniform(0, 10, []Member{{ID: strings.Repeat("x", maxCodecString+1), Addr: "a"}}, UniformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Encode(); err == nil || !strings.Contains(err.Error(), "string") {
		t.Fatalf("err = %v", err)
	}
}

func FuzzDecodeShardMap(f *testing.F) {
	m, err := Uniform(0, 300, members("a", "b", "c"), UniformOptions{ShardsPerMember: 2, Width: 2})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := m.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{codecVersion})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := Decode(b)
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the invariants and re-encode.
		if verr := got.Validate(); verr != nil {
			t.Fatalf("Decode returned invalid map: %v", verr)
		}
		if _, eerr := got.Encode(); eerr != nil {
			t.Fatalf("decoded map failed to re-encode: %v", eerr)
		}
	})
}
