package shardmap

import (
	"fmt"
	"sync"
)

// DefaultHistory is how many past generations a Store keeps resolvable
// by default, so fetches pinned to a recent generation can still decode
// their owner tokens while the map advances under them.
const DefaultHistory = 8

// Store holds the live shard map generation plus a bounded history of
// recent ones, and fans out every applied generation to subscribers.
// All methods are safe for concurrent use; the *Map values handed out
// are immutable.
type Store struct {
	mu      sync.Mutex
	history []*Map // ascending by Gen; last is current
	encoded []byte // cached Encode of current, built lazily
	keep    int
	subs    map[int]chan *Map
	nextSub int

	// OnApply, when set before the first Apply, is called synchronously
	// (outside the store lock) with every newly applied generation and
	// the number of chunk moves it took relative to its predecessor.
	// This is the metrics hook: shardmap stays a stdlib-only leaf, and
	// the caller bridges to its metrics registry here.
	OnApply func(m *Map, moved int)
}

// NewStore builds a Store seeded with the given map as the live
// generation. history bounds how many generations stay resolvable via
// At (values < 1 mean DefaultHistory).
func NewStore(initial *Map, history int) (*Store, error) {
	if err := initial.Validate(); err != nil {
		return nil, err
	}
	if history < 1 {
		history = DefaultHistory
	}
	return &Store{
		history: []*Map{initial},
		keep:    history,
		subs:    make(map[int]chan *Map),
	}, nil
}

// Current returns the live generation.
func (s *Store) Current() *Map {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.history[len(s.history)-1]
}

// Generation returns the live generation number.
func (s *Store) Generation() uint64 {
	return s.Current().Gen
}

// At returns the map for a specific generation, or nil if it has aged
// out of the history (callers fall back to Current and let the
// stale-generation protocol sort it out).
func (s *Store) At(gen uint64) *Map {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.history) - 1; i >= 0; i-- {
		if s.history[i].Gen == gen {
			return s.history[i]
		}
		if s.history[i].Gen < gen {
			break
		}
	}
	return nil
}

// Apply publishes next as the live generation. Its Gen must be exactly
// one past the current generation — transitions are planned against the
// live map, and a gap means the planner raced another publisher.
func (s *Store) Apply(next *Map) error {
	if err := next.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	cur := s.history[len(s.history)-1]
	if next.Gen != cur.Gen+1 {
		s.mu.Unlock()
		return fmt.Errorf("shardmap: cannot apply generation %d over %d (must advance by exactly 1)", next.Gen, cur.Gen)
	}
	moved := s.applyLocked(next)
	hook := s.OnApply
	s.mu.Unlock()
	if hook != nil {
		hook(next, moved)
	}
	return nil
}

// ApplyIfNewer installs next iff its generation is strictly ahead of the
// live one, reporting whether it was installed. This is the client
// refresh path: a stale-generation response carries the server's current
// map, which may be several generations ahead, and an out-of-order
// refresh must never roll the map back.
func (s *Store) ApplyIfNewer(next *Map) (bool, error) {
	if err := next.Validate(); err != nil {
		return false, err
	}
	s.mu.Lock()
	cur := s.history[len(s.history)-1]
	if next.Gen <= cur.Gen {
		s.mu.Unlock()
		return false, nil
	}
	moved := s.applyLocked(next)
	hook := s.OnApply
	s.mu.Unlock()
	if hook != nil {
		hook(next, moved)
	}
	return true, nil
}

// applyLocked installs next as current, trims history, notifies
// subscribers, and returns the move count vs the prior generation
// (0 when the geometry changed and Diff cannot meter it).
func (s *Store) applyLocked(next *Map) int {
	prev := s.history[len(s.history)-1]
	s.history = append(s.history, next)
	if len(s.history) > s.keep {
		s.history = s.history[len(s.history)-s.keep:]
	}
	s.encoded = nil
	for _, ch := range s.subs {
		select {
		case ch <- next:
		default: // slow subscriber: drop; it reads Current when it wakes
		}
	}
	moved := 0
	if moves, err := Diff(prev, next); err == nil {
		moved = len(moves)
	}
	return moved
}

// Subscribe returns a channel that receives every generation applied
// after the call, plus a cancel func. The channel is buffered; a
// subscriber that falls behind misses intermediate generations (it
// should read Current when it wakes) but never blocks Apply.
func (s *Store) Subscribe() (<-chan *Map, func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSub
	s.nextSub++
	ch := make(chan *Map, 4)
	s.subs[id] = ch
	return ch, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.subs, id)
	}
}

// Encoded returns the wire encoding of the live generation, cached until
// the next Apply. This is what the server embeds in stale-generation
// responses and serves for map bootstrap, so encoding happens once per
// generation, not once per stale request.
func (s *Store) Encoded() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.encoded == nil {
		b, err := s.history[len(s.history)-1].Encode()
		if err != nil {
			return nil, err
		}
		s.encoded = b
	}
	return s.encoded, nil
}
