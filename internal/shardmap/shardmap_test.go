package shardmap

import (
	"strings"
	"testing"
)

func members(ids ...string) []Member {
	out := make([]Member, len(ids))
	for i, id := range ids {
		out[i] = Member{ID: id, Addr: "127.0.0.1:" + id}
	}
	return out
}

func TestUniformCoversKeyspaceBalanced(t *testing.T) {
	mems := members("a", "b", "c")
	m, err := Uniform(0, 1000, mems, UniformOptions{ShardsPerMember: 4, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 {
		t.Fatalf("Gen = %d, want 1", m.Gen)
	}
	if got := len(m.Shards); got != 12 {
		t.Fatalf("shards = %d, want 12", got)
	}
	lo, hi := m.Range()
	if lo != 0 || hi != 1000 {
		t.Fatalf("Range = [%d,%d), want [0,1000)", lo, hi)
	}
	// Every id resolves, and primaries are balanced.
	load := make([]int, len(mems))
	for _, sh := range m.Shards {
		if sh.Width() != 2 {
			t.Fatalf("shard width = %d, want 2", sh.Width())
		}
		load[sh.Owners[0]]++
	}
	for mi, n := range load {
		if n != 4 {
			t.Fatalf("member %d has %d primaries, want 4", mi, n)
		}
	}
	// Contiguity of primary runs (same striping as static chunkStarts).
	for i := 1; i < len(m.Shards); i++ {
		if m.Shards[i].Owners[0] < m.Shards[i-1].Owners[0] {
			t.Fatalf("primaries not a contiguous ascending run: %v then %v",
				m.Shards[i-1].Owners, m.Shards[i].Owners)
		}
	}
}

func TestUniformTinyKeyspaceClampsShards(t *testing.T) {
	m, err := Uniform(0, 5, members("a", "b", "c"), UniformOptions{ShardsPerMember: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Shards); got != 5 {
		t.Fatalf("shards = %d, want 5 (clamped to keyspace size)", got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUniformWidthClampedToMembers(t *testing.T) {
	m, err := Uniform(0, 100, members("a", "b"), UniformOptions{Width: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sh := range m.Shards {
		if sh.Width() != 2 {
			t.Fatalf("width = %d, want 2", sh.Width())
		}
	}
}

func TestUniformErrors(t *testing.T) {
	if _, err := Uniform(10, 10, members("a"), UniformOptions{}); err == nil {
		t.Fatal("empty keyspace accepted")
	}
	if _, err := Uniform(0, 10, nil, UniformOptions{}); err == nil {
		t.Fatal("no members accepted")
	}
}

func TestOwnerLookups(t *testing.T) {
	m := &Map{
		Gen:     3,
		Members: members("a", "b", "c"),
		Shards: []Shard{
			{Lo: 0, Hi: 10, Owners: []int{0, 1}},
			{Lo: 10, Hi: 25, Owners: []int{1, 2}},
			{Lo: 25, Hi: 30, Owners: []int{2, 0}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		id    int64
		shard int
		owner int
	}{
		{0, 0, 0}, {9, 0, 0}, {10, 1, 1}, {24, 1, 1}, {25, 2, 2}, {29, 2, 2},
	}
	for _, c := range cases {
		if got := m.ShardIndex(c.id); got != c.shard {
			t.Fatalf("ShardIndex(%d) = %d, want %d", c.id, got, c.shard)
		}
		own, err := m.OwnerOf(c.id)
		if err != nil {
			t.Fatal(err)
		}
		if own != c.owner {
			t.Fatalf("OwnerOf(%d) = %d, want %d", c.id, own, c.owner)
		}
	}
	for _, id := range []int64{-1, 30, 1 << 40} {
		if got := m.ShardIndex(id); got != -1 {
			t.Fatalf("ShardIndex(%d) = %d, want -1", id, got)
		}
		if _, err := m.OwnerOf(id); err == nil || !strings.Contains(err.Error(), "outside keyspace") {
			t.Fatalf("OwnerOf(%d) err = %v, want outside-keyspace", id, err)
		}
	}
}

func TestPreferredOwnerRotatesOverReplicas(t *testing.T) {
	m := &Map{
		Gen:     1,
		Members: members("a", "b", "c"),
		Shards:  []Shard{{Lo: 0, Hi: 9, Owners: []int{2, 0, 1}}},
	}
	// id mod width picks the rotation slot, matching static id%r.
	want := map[int64]int{0: 2, 1: 0, 2: 1, 3: 2, 4: 0}
	for id, w := range want {
		got, err := m.PreferredOwner(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("PreferredOwner(%d) = %d, want %d", id, got, w)
		}
	}
	if _, err := m.PreferredOwner(99); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if got := preferenceIndex(-7, 3); got < 0 || got >= 3 {
		t.Fatalf("preferenceIndex(-7,3) = %d, want in [0,3)", got)
	}
}

func TestMemberIndexAndOwnedBy(t *testing.T) {
	m := &Map{
		Gen:     1,
		Members: members("a", "b"),
		Shards:  []Shard{{Lo: 0, Hi: 10, Owners: []int{1, 0}}, {Lo: 10, Hi: 20, Owners: []int{0}}},
	}
	if got := m.MemberIndex("b"); got != 1 {
		t.Fatalf("MemberIndex(b) = %d, want 1", got)
	}
	if got := m.MemberIndex("zzz"); got != -1 {
		t.Fatalf("MemberIndex(zzz) = %d, want -1", got)
	}
	if !m.OwnedBy(5, 0) || !m.OwnedBy(5, 1) {
		t.Fatal("both members own shard 0")
	}
	if m.OwnedBy(15, 1) {
		t.Fatal("member 1 does not own shard 1")
	}
	if m.OwnedBy(99, 0) {
		t.Fatal("out-of-range id owned by no one")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, err := Uniform(0, 100, members("a", "b"), UniformOptions{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Shards[0].Owners[0] = 1
	c.Members[0].ID = "mutated"
	if m.Shards[0].Owners[0] == 1 && m.Members[0].ID == "mutated" {
		t.Fatal("Clone shares backing arrays with the original")
	}
}

func TestValidateRejections(t *testing.T) {
	good := func() *Map {
		return &Map{
			Gen:     1,
			Members: members("a", "b"),
			Shards:  []Shard{{Lo: 0, Hi: 10, Owners: []int{0}}, {Lo: 10, Hi: 20, Owners: []int{1}}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Map)
		want   string
	}{
		{"gen zero", func(m *Map) { m.Gen = 0 }, "generation 0"},
		{"no members", func(m *Map) { m.Members = nil }, "no members"},
		{"no shards", func(m *Map) { m.Shards = nil }, "no shards"},
		{"empty member id", func(m *Map) { m.Members[1].ID = "" }, "empty ID"},
		{"dup member id", func(m *Map) { m.Members[1].ID = "a" }, "duplicate member"},
		{"empty shard", func(m *Map) { m.Shards[0].Hi = 0 }, "empty range"},
		{"gap", func(m *Map) { m.Shards[1].Lo = 11 }, "gap between"},
		{"no owners", func(m *Map) { m.Shards[0].Owners = nil }, "no owners"},
		{"owner out of range", func(m *Map) { m.Shards[0].Owners = []int{7} }, "outside member list"},
		{"negative owner", func(m *Map) { m.Shards[0].Owners = []int{-1} }, "outside member list"},
		{"dup owner", func(m *Map) { m.Shards[0].Owners = []int{0, 0} }, "twice"},
	}
	for _, c := range cases {
		m := good()
		c.mutate(m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("good map rejected: %v", err)
	}
}

func TestEmptyMapRange(t *testing.T) {
	m := &Map{Gen: 1}
	lo, hi := m.Range()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty Range = [%d,%d), want [0,0)", lo, hi)
	}
	if got := m.ShardIndex(0); got != -1 {
		t.Fatalf("ShardIndex on empty map = %d, want -1", got)
	}
}
