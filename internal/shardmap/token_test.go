package shardmap

import "testing"

func TestPackOwnerRoundTrip(t *testing.T) {
	cases := []struct {
		gen    uint64
		member int
	}{
		{1, 0},
		{1, 1},
		{2, 3},
		{42, 1023},
		{1, MaxMember},             // boundary: max member index
		{MaxGeneration, 0},         // boundary: max generation
		{MaxGeneration, MaxMember}, // boundary: both maxed
		{MaxGeneration - 1, MaxMember - 1},
	}
	for _, c := range cases {
		tok, err := PackOwner(c.gen, c.member)
		if err != nil {
			t.Fatalf("PackOwner(%d, %d): %v", c.gen, c.member, err)
		}
		if tok < 0 {
			t.Fatalf("PackOwner(%d, %d) = %d, negative tokens break owner sorting", c.gen, c.member, tok)
		}
		gen, member, err := UnpackOwner(tok)
		if err != nil {
			t.Fatalf("UnpackOwner(%d): %v", tok, err)
		}
		if gen != c.gen || member != c.member {
			t.Fatalf("round trip (%d, %d) -> %d -> (%d, %d)", c.gen, c.member, tok, gen, member)
		}
	}
}

func TestPackOwnerTokensSortByGenerationThenMember(t *testing.T) {
	// The fetch engine sorts owner groups by token; same-generation tokens
	// must order by member so grouping is stable.
	t1, _ := PackOwner(1, 5)
	t2, _ := PackOwner(1, 6)
	t3, _ := PackOwner(2, 0)
	if !(t1 < t2 && t2 < t3) {
		t.Fatalf("token order broken: %d, %d, %d", t1, t2, t3)
	}
}

func TestPackOwnerRejections(t *testing.T) {
	if _, err := PackOwner(1, -1); err == nil {
		t.Fatal("negative member accepted")
	}
	if _, err := PackOwner(1, MaxMember+1); err == nil {
		t.Fatal("member above MaxMember accepted")
	}
	if _, err := PackOwner(0, 0); err == nil {
		t.Fatal("generation 0 accepted")
	}
	if _, err := PackOwner(MaxGeneration+1, 0); err == nil {
		t.Fatal("generation above MaxGeneration accepted")
	}
}

func TestUnpackOwnerRejections(t *testing.T) {
	if _, _, err := UnpackOwner(-1); err == nil {
		t.Fatal("negative token accepted")
	}
	// A bare member index without a generation is not a valid token.
	if _, _, err := UnpackOwner(3); err == nil {
		t.Fatal("generation-0 token accepted")
	}
}
