package shardmap

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding of a Map, carried in stale-generation responses and map
// bootstrap replies. Little-endian, bounded at every length so a hostile
// or corrupt frame cannot force a huge allocation:
//
//	u8  version (codecVersion)
//	u64 generation
//	u32 member count
//	  per member: u16 len + ID bytes, u16 len + Addr bytes
//	u32 shard count
//	  per shard: i64 lo, i64 hi, u16 owner count, u32 owner indexes
//
// Decode re-runs Validate, so a decoded map carries the same invariants
// as a built one.
const (
	codecVersion = 1

	maxCodecMembers = 1 << 16
	maxCodecShards  = 1 << 20
	maxCodecString  = 4096
)

// Encode serializes the map.
func (m *Map) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	size := 1 + 8 + 4 + 4
	for _, mem := range m.Members {
		size += 2 + len(mem.ID) + 2 + len(mem.Addr)
	}
	for _, sh := range m.Shards {
		size += 8 + 8 + 2 + 4*len(sh.Owners)
	}
	b := make([]byte, 0, size)
	b = append(b, codecVersion)
	b = binary.LittleEndian.AppendUint64(b, m.Gen)
	if len(m.Members) > maxCodecMembers {
		return nil, fmt.Errorf("shardmap: %d members exceeds wire limit %d", len(m.Members), maxCodecMembers)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Members)))
	for _, mem := range m.Members {
		var err error
		if b, err = appendString(b, mem.ID); err != nil {
			return nil, err
		}
		if b, err = appendString(b, mem.Addr); err != nil {
			return nil, err
		}
	}
	if len(m.Shards) > maxCodecShards {
		return nil, fmt.Errorf("shardmap: %d shards exceeds wire limit %d", len(m.Shards), maxCodecShards)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Shards)))
	for _, sh := range m.Shards {
		b = binary.LittleEndian.AppendUint64(b, uint64(sh.Lo))
		b = binary.LittleEndian.AppendUint64(b, uint64(sh.Hi))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(sh.Owners)))
		for _, o := range sh.Owners {
			b = binary.LittleEndian.AppendUint32(b, uint32(o))
		}
	}
	return b, nil
}

func appendString(b []byte, s string) ([]byte, error) {
	if len(s) > maxCodecString {
		return nil, fmt.Errorf("shardmap: string of %d bytes exceeds wire limit %d", len(s), maxCodecString)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...), nil
}

// Decode parses and validates a wire-encoded map.
func Decode(b []byte) (*Map, error) {
	d := decoder{b: b}
	if v := d.u8(); v != codecVersion {
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("shardmap: unknown wire version %d", v)
	}
	m := &Map{Gen: d.u64()}
	nMembers := int(d.u32())
	if d.err == nil && nMembers > maxCodecMembers {
		return nil, fmt.Errorf("shardmap: %d members exceeds wire limit %d", nMembers, maxCodecMembers)
	}
	if d.err == nil {
		m.Members = make([]Member, 0, nMembers)
		for i := 0; i < nMembers && d.err == nil; i++ {
			id := d.str()
			addr := d.str()
			m.Members = append(m.Members, Member{ID: id, Addr: addr})
		}
	}
	nShards := int(d.u32())
	if d.err == nil && nShards > maxCodecShards {
		return nil, fmt.Errorf("shardmap: %d shards exceeds wire limit %d", nShards, maxCodecShards)
	}
	if d.err == nil {
		m.Shards = make([]Shard, 0, nShards)
		for i := 0; i < nShards && d.err == nil; i++ {
			lo := int64(d.u64())
			hi := int64(d.u64())
			nOwners := int(d.u16())
			if d.err == nil && nOwners > maxCodecMembers {
				d.err = fmt.Errorf("shardmap: shard %d owner count %d exceeds wire limit", i, nOwners)
				break
			}
			owners := make([]int, 0, nOwners)
			for j := 0; j < nOwners && d.err == nil; j++ {
				owners = append(owners, int(d.u32()))
			}
			m.Shards = append(m.Shards, Shard{Lo: lo, Hi: hi, Owners: owners})
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("shardmap: %d trailing bytes after map", len(d.b))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("shardmap: truncated map (need %d bytes, have %d)", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := int(d.u16())
	if d.err == nil && n > maxCodecString {
		d.err = fmt.Errorf("shardmap: string of %d bytes exceeds wire limit %d", n, maxCodecString)
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
