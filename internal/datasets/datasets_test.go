package datasets

import (
	"math"
	"testing"
	"testing/quick"
)

func allDatasets(cfg Config) []*Dataset {
	return []*Dataset{Ising(cfg), HomoLumo(cfg), AISDExDiscrete(cfg), AISDExSmooth(cfg)}
}

func TestSampleDeterminism(t *testing.T) {
	for _, d := range allDatasets(Config{NumGraphs: 100}) {
		a, err := d.Sample(17)
		if err != nil {
			t.Fatal(err)
		}
		b, err := d.Sample(17)
		if err != nil {
			t.Fatal(err)
		}
		ab, bb := a.Encode(), b.Encode()
		if len(ab) != len(bb) {
			t.Fatalf("%s: nondeterministic sample size", d.Name())
		}
		for i := range ab {
			if ab[i] != bb[i] {
				t.Fatalf("%s: nondeterministic sample bytes at %d", d.Name(), i)
			}
		}
	}
}

func TestSamplesDiffer(t *testing.T) {
	for _, d := range allDatasets(Config{NumGraphs: 100}) {
		a, _ := d.Sample(1)
		b, _ := d.Sample(2)
		if a.Y[0] == b.Y[0] && a.NumNodes == b.NumNodes && a.NumEdges() == b.NumEdges() {
			// Identical shape and label across ids would indicate a broken
			// id-to-seed mapping (Ising always has the same shape, so check
			// the label there).
			if d.Name() == "Ising" {
				t.Fatalf("%s: samples 1 and 2 identical", d.Name())
			}
		}
	}
}

func TestSampleRangeChecks(t *testing.T) {
	d := Ising(Config{NumGraphs: 10})
	if _, err := d.Sample(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := d.Sample(10); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := d.Sample(9); err != nil {
		t.Fatal(err)
	}
}

func TestAllSamplesValid(t *testing.T) {
	for _, d := range allDatasets(Config{NumGraphs: 50}) {
		for id := int64(0); id < 50; id++ {
			g, err := d.Sample(id)
			if err != nil {
				t.Fatalf("%s[%d]: %v", d.Name(), id, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s[%d]: %v", d.Name(), id, err)
			}
			if g.ID != id {
				t.Fatalf("%s[%d]: ID = %d", d.Name(), id, g.ID)
			}
			if len(g.Y) != d.OutputDim() {
				t.Fatalf("%s[%d]: %d targets, want %d", d.Name(), id, len(g.Y), d.OutputDim())
			}
			if g.NodeFeatDim != d.NodeFeatDim() {
				t.Fatalf("%s[%d]: node dim %d, want %d", d.Name(), id, g.NodeFeatDim, d.NodeFeatDim())
			}
		}
	}
}

func TestIsingStructure(t *testing.T) {
	d := Ising(Config{NumGraphs: 10})
	g, err := d.Sample(0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 125 {
		t.Fatalf("Ising has %d atoms, want 125", g.NumNodes)
	}
	// Non-periodic 5^3 lattice: 3 * 4 * 25 = 300 bonds = 600 directed edges.
	if g.NumEdges() != 600 {
		t.Fatalf("Ising has %d directed edges, want 600", g.NumEdges())
	}
	// Spins are ±1 in feature column 0.
	for i := 0; i < g.NumNodes; i++ {
		s := g.NodeFeat[i*4]
		if s != 1 && s != -1 {
			t.Fatalf("atom %d spin = %v", i, s)
		}
	}
}

func TestIsingEnergyMatchesHamiltonian(t *testing.T) {
	d := Ising(Config{NumGraphs: 20})
	for id := int64(0); id < 20; id++ {
		g, _ := d.Sample(id)
		// Recompute E = -sum over undirected bonds of s_i s_j; directed
		// edges double-count, so halve.
		var e float64
		for k := range g.EdgeSrc {
			si := g.NodeFeat[g.EdgeSrc[k]*4]
			sj := g.NodeFeat[g.EdgeDst[k]*4]
			e -= float64(si * sj)
		}
		e /= 2
		want := e / 125
		if math.Abs(float64(g.Y[0])-want) > 1e-4 {
			t.Fatalf("sample %d: label %v, Hamiltonian %v", id, g.Y[0], want)
		}
	}
}

func TestIsingEnergyRange(t *testing.T) {
	// Per-atom energy of a 5^3 lattice lies in [-300/125, 300/125].
	d := Ising(Config{NumGraphs: 50})
	for id := int64(0); id < 50; id++ {
		g, _ := d.Sample(id)
		if e := float64(g.Y[0]); e < -2.4 || e > 2.4 {
			t.Fatalf("sample %d: per-atom energy %v out of range", id, e)
		}
	}
}

func TestMoleculeSizesInRange(t *testing.T) {
	d := HomoLumo(Config{NumGraphs: 300})
	var totalNodes int
	for id := int64(0); id < 300; id++ {
		g, _ := d.Sample(id)
		if g.NumNodes < 5 || g.NumNodes > 71 {
			t.Fatalf("molecule %d has %d atoms, want 5..71", id, g.NumNodes)
		}
		totalNodes += g.NumNodes
	}
	mean := float64(totalNodes) / 300
	// Paper mean is ~52.4 atoms; accept a generous band.
	if mean < 40 || mean > 62 {
		t.Fatalf("mean molecule size %v, want ~52", mean)
	}
}

func TestMoleculeConnected(t *testing.T) {
	d := HomoLumo(Config{NumGraphs: 50})
	for id := int64(0); id < 50; id++ {
		g, _ := d.Sample(id)
		// BFS from node 0 must reach every node.
		adj := make([][]int32, g.NumNodes)
		for k := range g.EdgeSrc {
			adj[g.EdgeSrc[k]] = append(adj[g.EdgeSrc[k]], g.EdgeDst[k])
		}
		seen := make([]bool, g.NumNodes)
		queue := []int32{0}
		seen[0] = true
		count := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					count++
					queue = append(queue, w)
				}
			}
		}
		if count != g.NumNodes {
			t.Fatalf("molecule %d: only %d/%d atoms reachable", id, count, g.NumNodes)
		}
	}
}

func TestHomoLumoGapPositive(t *testing.T) {
	d := HomoLumo(Config{NumGraphs: 200})
	for id := int64(0); id < 200; id++ {
		g, _ := d.Sample(id)
		if g.Y[0] <= 0 || g.Y[0] > 20 {
			t.Fatalf("gap[%d] = %v, implausible", id, g.Y[0])
		}
	}
}

func TestDiscreteSpectrumShape(t *testing.T) {
	d := AISDExDiscrete(Config{NumGraphs: 50})
	for id := int64(0); id < 50; id++ {
		g, _ := d.Sample(id)
		if len(g.Y) != 100 {
			t.Fatalf("discrete target dim %d", len(g.Y))
		}
		for k := 0; k < 50; k++ {
			if g.Y[k] <= 0 || g.Y[k] >= 1 {
				t.Fatalf("peak position %v out of (0,1)", g.Y[k])
			}
			if g.Y[50+k] < 0 {
				t.Fatalf("negative intensity %v", g.Y[50+k])
			}
		}
	}
}

func TestSmoothSpectrumShape(t *testing.T) {
	d := AISDExSmooth(Config{NumGraphs: 20, SpectrumBins: 200})
	g, _ := d.Sample(3)
	if len(g.Y) != 200 {
		t.Fatalf("smooth target dim %d", len(g.Y))
	}
	var sum float64
	for _, v := range g.Y {
		if v < 0 {
			t.Fatalf("negative smoothed intensity %v", v)
		}
		sum += float64(v)
	}
	if sum == 0 {
		t.Fatal("smoothed spectrum is all zeros")
	}
}

func TestSmoothSpectrumConservesMass(t *testing.T) {
	// The Gaussian-smoothed spectrum integrates to roughly the sum of peak
	// intensities (each unit peak contributes sigma*sqrt(2pi)*bins grid
	// mass).
	pos := []float32{0.5}
	inten := []float32{2}
	bins := 1000
	sigma := 0.01
	out := SmoothSpectrum(pos, inten, bins, sigma)
	var mass float64
	for _, v := range out {
		mass += float64(v)
	}
	want := 2 * sigma * math.Sqrt(2*math.Pi) * float64(bins)
	if math.Abs(mass-want)/want > 0.02 {
		t.Fatalf("smoothed mass %v, want %v", mass, want)
	}
}

func TestSmoothSpectrumEdgePeaks(t *testing.T) {
	// Peaks at the grid edges must not write out of bounds.
	out := SmoothSpectrum([]float32{0.001, 0.999}, []float32{1, 1}, 100, 0.05)
	if len(out) != 100 {
		t.Fatal("wrong grid size")
	}
	if out[0] <= 0 || out[99] <= 0 {
		t.Fatal("edge peaks lost")
	}
}

func TestSmoothSpectrumSkipsZeroIntensity(t *testing.T) {
	out := SmoothSpectrum([]float32{0.5}, []float32{0}, 100, 0.01)
	for _, v := range out {
		if v != 0 {
			t.Fatal("zero-intensity peak contributed mass")
		}
	}
}

func TestDatasetBytesPerSampleOrdering(t *testing.T) {
	// The paper's Table 1 size ordering: smooth >> ising > discrete ~ homolumo
	// per sample (Ising: 125 nodes with 4 features; molecules average ~52
	// nodes). The smooth variant must dominate.
	cfg := Config{NumGraphs: 200}
	sizes := map[string]int64{}
	for _, d := range allDatasets(cfg) {
		st, err := ComputeStats(d, 200)
		if err != nil {
			t.Fatal(err)
		}
		sizes[d.Name()] = st.MeanBytesPFF
	}
	if !(sizes["ORNL AISD-Ex (Smooth)"] > sizes["ORNL AISD-Ex (Discrete)"]) {
		t.Fatalf("smooth (%d B) not larger than discrete (%d B)",
			sizes["ORNL AISD-Ex (Smooth)"], sizes["ORNL AISD-Ex (Discrete)"])
	}
	if !(sizes["ORNL AISD-Ex (Discrete)"] > sizes["AISD HOMO-LUMO"]) {
		t.Fatalf("discrete (%d B) not larger than homo-lumo (%d B)",
			sizes["ORNL AISD-Ex (Discrete)"], sizes["AISD HOMO-LUMO"])
	}
}

func TestComputeStats(t *testing.T) {
	d := Ising(Config{NumGraphs: 1000})
	st, err := ComputeStats(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumGraphs != 1000 {
		t.Fatalf("NumGraphs = %d", st.NumGraphs)
	}
	if st.TotalNodes != 125*1000 {
		t.Fatalf("TotalNodes = %d, want 125000", st.TotalNodes)
	}
	if st.TotalEdges != 600*1000 {
		t.Fatalf("TotalEdges = %d, want 600000", st.TotalEdges)
	}
	if st.MeanBytesPFF <= 0 || st.TotalBytesPFF <= 0 {
		t.Fatal("byte stats missing")
	}
}

func TestLabelsAreSmoothFunctionals(t *testing.T) {
	// Property: the HOMO-LUMO label depends only on the graph, not on
	// hidden state — regenerating from the decoded bytes gives the same
	// label (quick.Check over ids).
	d := HomoLumo(Config{NumGraphs: 5000})
	f := func(raw uint16) bool {
		id := int64(raw) % int64(d.Len())
		g, err := d.Sample(id)
		if err != nil {
			return false
		}
		return g.Y[0] == homoLumoGap(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEnableCacheReturnsSameSamples(t *testing.T) {
	plain := HomoLumo(Config{NumGraphs: 30})
	cached := HomoLumo(Config{NumGraphs: 30})
	cached.EnableCache()
	cached.EnableCache() // idempotent
	for id := int64(0); id < 30; id++ {
		a, _ := plain.Sample(id)
		b, _ := cached.Sample(id)
		ae, be := a.Encode(), b.Encode()
		if len(ae) != len(be) {
			t.Fatalf("cached sample %d differs in size", id)
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("cached sample %d differs at byte %d", id, i)
			}
		}
		c, _ := cached.Sample(id)
		if b != c {
			t.Fatal("cache not returning stable pointers")
		}
	}
}
