// Package datasets provides deterministic synthetic generators with the
// statistical shape of the paper's four atomistic datasets:
//
//   - Ising: 125-atom cubic-lattice spin configurations with a closed-form
//     Ising Hamiltonian energy label (the paper's synthetic benchmark for
//     ferromagnetic materials).
//   - AISD HOMO-LUMO: organic molecules of 5–71 heavy atoms with a scalar
//     HOMO-LUMO-gap label.
//   - ORNL AISD-Ex (Discrete): the same molecules with a 2×50 UV-vis
//     spectrum target (50 peak positions and 50 intensities).
//   - ORNL AISD-Ex (Smooth): a Gaussian-smoothed spectrum on a configurable
//     grid (37,500 bins in the paper; scaled down by default).
//
// Every sample is generated deterministically from (dataset seed, sample
// id), so any rank can materialize any chunk without coordination and the
// same id always yields identical bytes — the property the equivalence tests
// between PFF, CFF, and DDStore rely on.
//
// The labels are deterministic smooth functionals of the graph structure, so
// a GNN can genuinely learn them (used by the convergence experiment,
// Fig. 13).
package datasets

import (
	"fmt"
	"math"

	"ddstore/internal/graph"
	"ddstore/internal/vtime"
)

// Dataset is a deterministic sample source.
type Dataset struct {
	name      string
	numGraphs int
	yDim      int
	nodeDim   int
	edgeDim   int
	gen       func(rng *vtime.RNG, id int64) *graph.Graph
	// cache holds pre-generated samples after EnableCache. Samples are
	// treated as immutable everywhere (batching and preloading copy), so
	// sharing pointers is safe.
	cache []*graph.Graph
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.numGraphs }

// OutputDim returns the per-graph target width.
func (d *Dataset) OutputDim() int { return d.yDim }

// NodeFeatDim returns the per-node feature width.
func (d *Dataset) NodeFeatDim() int { return d.nodeDim }

// EdgeFeatDim returns the per-edge feature width.
func (d *Dataset) EdgeFeatDim() int { return d.edgeDim }

// Sample deterministically generates sample id (or returns the cached
// instance after EnableCache). Callers must treat the result as immutable.
func (d *Dataset) Sample(id int64) (*graph.Graph, error) {
	if id < 0 || id >= int64(d.numGraphs) {
		return nil, fmt.Errorf("datasets: sample %d out of range [0,%d)", id, d.numGraphs)
	}
	if d.cache != nil {
		return d.cache[id], nil
	}
	return d.generate(id), nil
}

func (d *Dataset) generate(id int64) *graph.Graph {
	rng := vtime.NewRNG(uint64(id)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03)
	g := d.gen(rng, id)
	g.ID = id
	return g
}

// EnableCache eagerly materializes every sample so subsequent Sample calls
// are pointer lookups. Call before sharing the dataset across goroutines —
// the experiment harness uses it to avoid regenerating hundreds of
// thousands of samples per run. Idempotent.
func (d *Dataset) EnableCache() {
	if d.cache != nil {
		return
	}
	cache := make([]*graph.Graph, d.numGraphs)
	for id := range cache {
		cache[id] = d.generate(int64(id))
	}
	d.cache = cache
}

// Config controls dataset generation.
type Config struct {
	// NumGraphs overrides the sample count (0 means the scaled default).
	NumGraphs int
	// SpectrumBins sets the smooth-spectrum grid size (0 means 375, the
	// paper's 37,500 scaled by 100×).
	SpectrumBins int
}

func (c Config) numGraphs(def int) int {
	if c.NumGraphs > 0 {
		return c.NumGraphs
	}
	return def
}

// Scaled default sample counts: the paper's counts divided by ~100 so the
// full suite runs on one machine. Relative dataset sizes are preserved.
const (
	DefaultIsingGraphs    = 12000
	DefaultMoleculeGraphs = 105000
	DefaultSpectrumBins   = 375
)

// Ising returns the synthetic Ising dataset: a 5×5×5 cubic lattice (125
// atoms) per sample, random ±1 spins, energy from the Ising Hamiltonian
// E = -J Σ_<ij> s_i s_j with J = 1 over lattice-neighbor bonds.
func Ising(cfg Config) *Dataset {
	const side = 5
	const atoms = side * side * side
	return &Dataset{
		name:      "Ising",
		numGraphs: cfg.numGraphs(DefaultIsingGraphs),
		yDim:      1,
		nodeDim:   4, // spin, x, y, z
		edgeDim:   1, // coupling strength
		gen: func(rng *vtime.RNG, id int64) *graph.Graph {
			spins := make([]float32, atoms)
			for i := range spins {
				if rng.Intn(2) == 0 {
					spins[i] = -1
				} else {
					spins[i] = 1
				}
			}
			idx := func(x, y, z int) int { return (x*side+y)*side + z }
			nodeFeat := make([]float32, 0, atoms*4)
			pos := make([]float32, 0, atoms*3)
			for x := 0; x < side; x++ {
				for y := 0; y < side; y++ {
					for z := 0; z < side; z++ {
						i := idx(x, y, z)
						px := float32(x) / side
						py := float32(y) / side
						pz := float32(z) / side
						nodeFeat = append(nodeFeat, spins[i], px, py, pz)
						pos = append(pos, px, py, pz)
					}
				}
			}
			var src, dst []int32
			var edgeFeat []float32
			var energy float64
			addBond := func(a, b int) {
				src = append(src, int32(a), int32(b))
				dst = append(dst, int32(b), int32(a))
				edgeFeat = append(edgeFeat, 1, 1)
				energy -= float64(spins[a] * spins[b])
			}
			for x := 0; x < side; x++ {
				for y := 0; y < side; y++ {
					for z := 0; z < side; z++ {
						if x+1 < side {
							addBond(idx(x, y, z), idx(x+1, y, z))
						}
						if y+1 < side {
							addBond(idx(x, y, z), idx(x, y+1, z))
						}
						if z+1 < side {
							addBond(idx(x, y, z), idx(x, y, z+1))
						}
					}
				}
			}
			return &graph.Graph{
				NumNodes:    atoms,
				NodeFeatDim: 4,
				NodeFeat:    nodeFeat,
				EdgeSrc:     src,
				EdgeDst:     dst,
				EdgeFeatDim: 1,
				EdgeFeat:    edgeFeat,
				Pos:         pos,
				Y:           []float32{float32(energy / atoms)}, // per-atom energy
			}
		},
	}
}

// molecule builds a random connected molecular graph of n heavy atoms: a
// random spanning tree plus ring-closing bonds, with element types drawn
// from organic chemistry's usual suspects (C, N, O, F, S, Cl).
func molecule(rng *vtime.RNG) (n int, elements []int, src, dst []int32) {
	// Mean heavy-atom count ≈ 52 like AISD (max of two uniforms over 5..71
	// skews high).
	a := 5 + rng.Intn(67)
	b := 5 + rng.Intn(67)
	n = a
	if b > n {
		n = b
	}
	elementSet := []int{6, 6, 6, 6, 6, 7, 7, 8, 8, 9, 16, 17} // carbon-rich
	elements = make([]int, n)
	for i := range elements {
		elements[i] = elementSet[rng.Intn(len(elementSet))]
	}
	addBond := func(x, y int) {
		src = append(src, int32(x), int32(y))
		dst = append(dst, int32(y), int32(x))
	}
	// Spanning tree: attach each atom to a random earlier atom, preferring
	// recent atoms (chains with branches, like real molecules).
	for i := 1; i < n; i++ {
		lo := i - 4
		if lo < 0 {
			lo = 0
		}
		parent := lo + rng.Intn(i-lo)
		addBond(parent, i)
	}
	// Ring closures: roughly one ring per 12 atoms.
	rings := n / 12
	for r := 0; r < rings; r++ {
		x := rng.Intn(n)
		y := rng.Intn(n)
		if x != y {
			addBond(x, y)
		}
	}
	return n, elements, src, dst
}

// moleculeGraph converts a generated molecule into graph form (without Y).
func moleculeGraph(rng *vtime.RNG) *graph.Graph {
	n, elements, src, dst := molecule(rng)
	deg := make([]int, n)
	for _, s := range src {
		deg[s]++
	}
	nodeFeat := make([]float32, 0, n*3)
	for i := 0; i < n; i++ {
		nodeFeat = append(nodeFeat,
			float32(elements[i])/17.0, // normalized atomic number
			float32(deg[i])/4.0,       // normalized degree
			float32(i)/float32(n),     // canonical position in the chain
		)
	}
	return &graph.Graph{
		NumNodes:    n,
		NodeFeatDim: 3,
		NodeFeat:    nodeFeat,
		EdgeSrc:     src,
		EdgeDst:     dst,
	}
}

// moleculeDescriptors returns smooth structural functionals used to build
// learnable labels: mean atomic number, size, mean degree.
func moleculeDescriptors(g *graph.Graph) (meanZ, size, meanDeg float64) {
	n := g.NumNodes
	for i := 0; i < n; i++ {
		meanZ += float64(g.NodeFeat[i*3]) // already normalized by 17
	}
	meanZ /= float64(n)
	size = float64(n)
	meanDeg = float64(g.NumEdges()) / float64(n)
	return
}

// homoLumoGap is the deterministic synthetic label: a smooth graph
// functional resembling how gaps shrink with conjugation length and vary
// with composition.
func homoLumoGap(g *graph.Graph) float32 {
	meanZ, size, meanDeg := moleculeDescriptors(g)
	gap := 1.5 + 30.0/(size+3) + 1.2*meanZ + 0.4*math.Sin(meanDeg*math.Pi)
	return float32(gap)
}

// HomoLumo returns the AISD HOMO-LUMO-style dataset: molecules with a scalar
// gap target.
func HomoLumo(cfg Config) *Dataset {
	return &Dataset{
		name:      "AISD HOMO-LUMO",
		numGraphs: cfg.numGraphs(DefaultMoleculeGraphs),
		yDim:      1,
		nodeDim:   3,
		edgeDim:   0,
		gen: func(rng *vtime.RNG, id int64) *graph.Graph {
			g := moleculeGraph(rng)
			g.Y = []float32{homoLumoGap(g)}
			return g
		},
	}
}

// spectrumPeaks derives 50 deterministic UV-vis peaks (positions in (0,1),
// non-negative intensities) from a molecule's structure.
func spectrumPeaks(g *graph.Graph, rng *vtime.RNG) (pos, intensity []float32) {
	meanZ, size, meanDeg := moleculeDescriptors(g)
	pos = make([]float32, 50)
	intensity = make([]float32, 50)
	base := 0.1 + 0.5*meanZ
	spread := 0.05 + 0.2/math.Sqrt(size)
	for k := 0; k < 50; k++ {
		center := base + 0.8*float64(k)/50*spread*10
		p := center + 0.02*rng.NormFloat64()
		if p < 0.001 {
			p = 0.001
		}
		if p > 0.999 {
			p = 0.999
		}
		pos[k] = float32(p)
		inten := math.Exp(-float64(k)/15) * (0.5 + meanDeg/3) * (1 + 0.1*rng.NormFloat64())
		if inten < 0 {
			inten = 0
		}
		intensity[k] = float32(inten)
	}
	return pos, intensity
}

// AISDExDiscrete returns the ORNL AISD-Ex discrete dataset: molecules with a
// 2×50 target (50 peak positions, 50 intensities).
func AISDExDiscrete(cfg Config) *Dataset {
	return &Dataset{
		name:      "ORNL AISD-Ex (Discrete)",
		numGraphs: cfg.numGraphs(DefaultMoleculeGraphs),
		yDim:      100,
		nodeDim:   3,
		edgeDim:   0,
		gen: func(rng *vtime.RNG, id int64) *graph.Graph {
			g := moleculeGraph(rng)
			pos, inten := spectrumPeaks(g, rng)
			g.Y = append(pos, inten...)
			return g
		},
	}
}

// AISDExSmooth returns the ORNL AISD-Ex smooth dataset: the discrete peaks
// Gaussian-smoothed onto a grid of cfg.SpectrumBins bins (default 375). The
// paper's grid is 37,500 bins; the Smooth & Small variant used on
// Perlmutter is 351.
func AISDExSmooth(cfg Config) *Dataset {
	bins := cfg.SpectrumBins
	if bins <= 0 {
		bins = DefaultSpectrumBins
	}
	return &Dataset{
		name:      "ORNL AISD-Ex (Smooth)",
		numGraphs: cfg.numGraphs(DefaultMoleculeGraphs),
		yDim:      bins,
		nodeDim:   3,
		edgeDim:   0,
		gen: func(rng *vtime.RNG, id int64) *graph.Graph {
			g := moleculeGraph(rng)
			pos, inten := spectrumPeaks(g, rng)
			g.Y = SmoothSpectrum(pos, inten, bins, 0.01)
			return g
		},
	}
}

// SmoothSpectrum convolves discrete peaks with a Gaussian of width sigma
// (in grid units of [0,1]) onto a bins-wide grid — the same post-processing
// the paper applies to the DFTB peaks.
func SmoothSpectrum(pos, intensity []float32, bins int, sigma float64) []float32 {
	out := make([]float32, bins)
	inv2s2 := 1 / (2 * sigma * sigma)
	for i := range pos {
		p := float64(pos[i])
		in := float64(intensity[i])
		if in == 0 {
			continue
		}
		// Only fill bins within 4 sigma of the peak.
		lo := int((p - 4*sigma) * float64(bins))
		hi := int((p+4*sigma)*float64(bins)) + 1
		if lo < 0 {
			lo = 0
		}
		if hi > bins {
			hi = bins
		}
		for k := lo; k < hi; k++ {
			x := (float64(k) + 0.5) / float64(bins)
			d := x - p
			out[k] += float32(in * math.Exp(-d*d*inv2s2))
		}
	}
	return out
}

// Stats summarizes a dataset by exact enumeration of a sample prefix and
// extrapolation, for the Table 1 reproduction.
type Stats struct {
	Name          string
	NumGraphs     int
	TotalNodes    int64
	TotalEdges    int64
	FeatureDim    int
	MeanBytesPFF  int64 // encoded size per sample
	TotalBytesPFF int64
}

// ComputeStats enumerates up to probe samples (0 = 1000) and extrapolates
// node/edge/byte totals to the full dataset size.
func ComputeStats(d *Dataset, probe int) (Stats, error) {
	if probe <= 0 {
		probe = 1000
	}
	if probe > d.Len() {
		probe = d.Len()
	}
	var nodes, edges, bytes int64
	for i := 0; i < probe; i++ {
		g, err := d.Sample(int64(i))
		if err != nil {
			return Stats{}, err
		}
		nodes += int64(g.NumNodes)
		edges += int64(g.NumEdges())
		bytes += int64(g.EncodedSize())
	}
	scale := float64(d.Len()) / float64(probe)
	return Stats{
		Name:          d.Name(),
		NumGraphs:     d.Len(),
		TotalNodes:    int64(float64(nodes) * scale),
		TotalEdges:    int64(float64(edges) * scale),
		FeatureDim:    d.OutputDim(),
		MeanBytesPFF:  bytes / int64(probe),
		TotalBytesPFF: int64(float64(bytes) * scale),
	}, nil
}

// ReadSample is an alias for Sample so a Dataset satisfies the
// core.SampleSource interface and can act as a direct in-memory source
// (bypassing any file format).
func (d *Dataset) ReadSample(id int64) (*graph.Graph, error) { return d.Sample(id) }
