// Package wire holds the tiny encoding helpers shared by every layer that
// frames sample ids — the TCP batch request body (internal/transport), the
// two-sided RMA fetch request (internal/core), and the prefetch stash key
// (internal/ddp) each used to carry their own copy of the same loop.
package wire

import "encoding/binary"

// AppendIDs appends the little-endian uint64 encoding of each id to dst
// and returns the extended slice. Append-style so a caller can reuse its
// own buffer (pass dst with spare capacity) or prefix the ids with its own
// header bytes.
func AppendIDs(dst []byte, ids []int64) []byte {
	for _, id := range ids {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(id))
	}
	return dst
}

// IDsSize returns the encoded size of n ids.
func IDsSize(n int) int { return 8 * n }
