package wire

import (
	"encoding/binary"
	"testing"
)

func TestAppendIDsRoundTrip(t *testing.T) {
	ids := []int64{0, 1, -1, 1 << 40, -(1 << 40), 42}
	out := AppendIDs(nil, ids)
	if len(out) != IDsSize(len(ids)) {
		t.Fatalf("len = %d, want %d", len(out), IDsSize(len(ids)))
	}
	for i, id := range ids {
		if got := int64(binary.LittleEndian.Uint64(out[8*i:])); got != id {
			t.Fatalf("id %d decoded as %d, want %d", i, got, id)
		}
	}
}

func TestAppendIDsKeepsPrefix(t *testing.T) {
	pre := []byte{0xAB, 0xCD}
	out := AppendIDs(append([]byte{}, pre...), []int64{7})
	if out[0] != 0xAB || out[1] != 0xCD {
		t.Fatal("prefix clobbered")
	}
	if got := int64(binary.LittleEndian.Uint64(out[2:])); got != 7 {
		t.Fatalf("id decoded as %d, want 7", got)
	}
}

func TestAppendIDsEmpty(t *testing.T) {
	if out := AppendIDs(nil, nil); len(out) != 0 {
		t.Fatalf("AppendIDs(nil, nil) = %v", out)
	}
	if IDsSize(0) != 0 {
		t.Fatal("IDsSize(0) != 0")
	}
}

func TestAppendIDsAllocs(t *testing.T) {
	ids := []int64{1, 2, 3, 4}
	buf := make([]byte, 0, IDsSize(len(ids)))
	allocs := testing.AllocsPerRun(100, func() {
		_ = AppendIDs(buf, ids)
	})
	if allocs != 0 {
		t.Fatalf("AppendIDs into presized buffer allocates %v/op, want 0", allocs)
	}
}
