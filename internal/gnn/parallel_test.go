package gnn

import (
	"fmt"
	"math"
	"testing"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// bigBatch builds a batch large enough that the parallel kernels genuinely
// partition it (past the inline cutoffs): numGraphs random graphs with
// irregular degrees, including isolated nodes.
func bigBatch(seed uint64, numGraphs, nodesPer, nodeDim, edgeDim, yDim int) *graph.Batch {
	rng := vtime.NewRNG(seed)
	graphs := make([]*graph.Graph, numGraphs)
	for gi := range graphs {
		n := nodesPer + rng.Intn(nodesPer)
		g := &graph.Graph{
			ID:          int64(gi),
			NumNodes:    n,
			NodeFeatDim: nodeDim,
			NodeFeat:    make([]float32, n*nodeDim),
			EdgeFeatDim: edgeDim,
			Y:           make([]float32, yDim),
		}
		for i := range g.NodeFeat {
			g.NodeFeat[i] = float32(rng.NormFloat64())
		}
		for e := 0; e < 3*n; e++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst {
				continue // self-loops skipped; also leaves some nodes isolated
			}
			g.EdgeSrc = append(g.EdgeSrc, int32(src))
			g.EdgeDst = append(g.EdgeDst, int32(dst))
		}
		g.EdgeFeat = make([]float32, len(g.EdgeSrc)*edgeDim)
		for i := range g.EdgeFeat {
			g.EdgeFeat[i] = float32(rng.NormFloat64())
		}
		for i := range g.Y {
			g.Y[i] = float32(rng.NormFloat64())
		}
		graphs[gi] = g
	}
	b, err := graph.NewBatch(graphs)
	if err != nil {
		panic(err)
	}
	return b
}

func matBitsEqual(a, b *tensor.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// pnaRun builds a fresh deterministic PNA layer, runs one forward/backward,
// and returns the output, input gradient, and parameter gradients.
func pnaRun(b *graph.Batch, dim int) (out, dX *tensor.Matrix, grads []*tensor.Matrix) {
	rng := vtime.NewRNG(99)
	p := NewPNA("det", dim, dim, b.EdgeFeatDim, math.Log(4), rng)
	x := tensor.New(b.NumNodes, dim)
	x.Randomize(vtime.NewRNG(7))
	y, cache := p.Forward(x, b)
	dOut := tensor.New(y.Rows, y.Cols)
	dOut.Randomize(vtime.NewRNG(11))
	dx := p.Backward(dOut, cache)
	for _, prm := range p.Params() {
		grads = append(grads, prm.Grad)
	}
	return y, dx, grads
}

// TestPNADeterministicAcrossParallelism: PNA Forward and Backward must be
// bit-identical for every worker count — the CSR-grouped aggregation
// preserves the serial edge order per node, and argmax/argmin tie-breaks
// follow it.
func TestPNADeterministicAcrossParallelism(t *testing.T) {
	for _, bc := range []struct {
		name  string
		batch *graph.Batch
	}{
		{"small", testBatch(vtime.NewRNG(3), 8, 4, 2)},
		{"large", bigBatch(17, 24, 30, 16, 6, 3)},
	} {
		dim := 16
		if bc.name == "small" {
			dim = 8
		}
		tensor.SetParallelism(1)
		refOut, refDX, refGrads := pnaRun(bc.batch, dim)
		tensor.SetParallelism(0)
		for _, par := range []int{2, 3, 8} {
			tensor.SetParallelism(par)
			out, dX, grads := pnaRun(bc.batch, dim)
			tensor.SetParallelism(0)
			if !matBitsEqual(out, refOut) {
				t.Fatalf("%s parallelism=%d: Forward not bit-identical", bc.name, par)
			}
			if !matBitsEqual(dX, refDX) {
				t.Fatalf("%s parallelism=%d: Backward dX not bit-identical", bc.name, par)
			}
			for i := range grads {
				if !matBitsEqual(grads[i], refGrads[i]) {
					t.Fatalf("%s parallelism=%d: param grad %d not bit-identical", bc.name, par, i)
				}
			}
		}
	}
}

// TestEdgeCSRGroupsInOrder: the CSR index must list each node's edges in
// ascending edge order (the determinism guarantee rests on it).
func TestEdgeCSRGroupsInOrder(t *testing.T) {
	nodeOf := []int32{2, 0, 2, 1, 0, 2}
	start, edges := edgeCSR(nodeOf, 4)
	wantStart := []int32{0, 2, 3, 6, 6}
	for i, w := range wantStart {
		if start[i] != w {
			t.Fatalf("start = %v, want %v", start, wantStart)
		}
	}
	wantEdges := []int32{1, 4, 3, 0, 2, 5}
	for i, w := range wantEdges {
		if edges[i] != w {
			t.Fatalf("edges = %v, want %v", edges, wantEdges)
		}
	}
}

// BenchmarkPNAForward / BenchmarkPNABackward: one conv layer on a
// realistic molecular batch (the paper's local batch is 128 graphs), at
// serial parallelism and 4 workers.
func BenchmarkPNAForward(b *testing.B) {
	batch := bigBatch(5, 128, 24, 32, 6, 1)
	rng := vtime.NewRNG(1)
	p := NewPNA("bench", 32, 32, batch.EdgeFeatDim, math.Log(4), rng)
	x := tensor.New(batch.NumNodes, 32)
	x.Randomize(rng)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			tensor.SetParallelism(par)
			defer tensor.SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(x, batch)
			}
		})
	}
}

func BenchmarkPNABackward(b *testing.B) {
	batch := bigBatch(5, 128, 24, 32, 6, 1)
	rng := vtime.NewRNG(1)
	p := NewPNA("bench", 32, 32, batch.EdgeFeatDim, math.Log(4), rng)
	x := tensor.New(batch.NumNodes, 32)
	x.Randomize(rng)
	out, cache := p.Forward(x, batch)
	dOut := tensor.New(out.Rows, out.Cols)
	dOut.Randomize(rng)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			tensor.SetParallelism(par)
			defer tensor.SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Backward(dOut, cache)
			}
		})
	}
}
