package gnn

import (
	"fmt"
	"math"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// stdEps stabilizes the standard-deviation aggregator's square root.
const stdEps = 1e-5

// numAggregators is mean, max, min, std.
const numAggregators = 4

// numScalers is identity, amplification, attenuation.
const numScalers = 3

// PNA is a Principal Neighbourhood Aggregation convolution layer: incoming
// messages are combined by four aggregators (mean, max, min, std), each
// modulated by three degree scalers (identity, amplification log(d+1)/δ,
// attenuation δ/log(d+1)), concatenated with the node's own features, and
// projected through a dense update network with ReLU.
type PNA struct {
	In, Out int
	// Delta is the degree-scaler normalizer δ (the PNA paper's average of
	// log(d+1) over the training graphs).
	Delta float64

	Wmsg  *Linear // In -> In: message transform
	Wedge *Linear // EdgeFeatDim -> In, nil when the dataset has no edge features
	Wupd  *Linear // In*(1+numAggregators*numScalers) -> Out: update network
}

// NewPNA creates a PNA layer. edgeDim may be 0.
func NewPNA(name string, in, out, edgeDim int, delta float64, rng *vtime.RNG) *PNA {
	p := &PNA{
		In:    in,
		Out:   out,
		Delta: delta,
		Wmsg:  NewLinear(name+".msg", in, in, rng),
		Wupd:  NewLinear(name+".upd", in*(1+numAggregators*numScalers), out, rng),
	}
	if edgeDim > 0 {
		p.Wedge = NewLinear(name+".edge", edgeDim, in, rng)
	}
	return p
}

// Params returns the layer's learnables.
func (p *PNA) Params() []*Param {
	out := append(p.Wmsg.Params(), p.Wupd.Params()...)
	if p.Wedge != nil {
		out = append(out, p.Wedge.Params()...)
	}
	return out
}

// PNACache holds the forward intermediates the backward pass needs. It is
// opaque to callers: obtain one from Forward and hand it back to Backward.
type PNACache struct {
	x        *tensor.Matrix // layer input
	msgNode  *tensor.Matrix // M = Wmsg(x), per node
	msgEdge  *tensor.Matrix // per-edge messages (after edge-feature add)
	edgeFeat *tensor.Matrix // edge features (m×edgeDim), nil if none
	mean     *tensor.Matrix
	maxM     *tensor.Matrix
	minM     *tensor.Matrix
	stdM     *tensor.Matrix
	argmax   []int32 // per (node, feature): edge index of the max, -1 if none
	argmin   []int32
	deg      []int32
	upIn     *tensor.Matrix // concat(x, scaled aggregates)
	out      *tensor.Matrix // post-ReLU output
	batch    *graph.Batch
}

// scalers returns (identity, amplification, attenuation) for a degree.
func (p *PNA) scalers(deg int32) (float32, float32, float32) {
	if deg <= 0 {
		return 1, 0, 0
	}
	l := math.Log(float64(deg) + 1)
	return 1, float32(l / p.Delta), float32(p.Delta / l)
}

// Forward runs the convolution on batch with node features x (n×In) and
// returns the new features (n×Out) plus the cache for Backward.
func (p *PNA) Forward(x *tensor.Matrix, b *graph.Batch) (*tensor.Matrix, *PNACache) {
	n := b.NumNodes
	m := b.NumEdges()
	if x.Rows != n || x.Cols != p.In {
		panic(fmt.Sprintf("gnn: pna input %dx%d for %d nodes, %d dims", x.Rows, x.Cols, n, p.In))
	}
	c := &PNACache{x: x, batch: b}
	c.msgNode = p.Wmsg.Forward(x)

	// Per-edge messages.
	c.msgEdge = tensor.New(m, p.In)
	tensor.ParallelFor(m, p.In, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			copy(c.msgEdge.Row(e), c.msgNode.Row(int(b.EdgeSrc[e])))
		}
	})
	if p.Wedge != nil && b.EdgeFeatDim > 0 {
		c.edgeFeat = tensor.FromData(m, b.EdgeFeatDim, b.EdgeFeat)
		tensor.AddInPlace(c.msgEdge, p.Wedge.Forward(c.edgeFeat))
	}

	// Aggregate per destination node.
	d := p.In
	c.mean = tensor.New(n, d)
	c.maxM = tensor.New(n, d)
	c.minM = tensor.New(n, d)
	c.stdM = tensor.New(n, d)
	sumSq := make([]float32, n*d)
	c.argmax = make([]int32, n*d)
	c.argmin = make([]int32, n*d)
	for i := range c.argmax {
		c.argmax[i] = -1
		c.argmin[i] = -1
	}
	// Partition *nodes* across workers and walk each node's incident edges
	// from the CSR index, which lists them in the ascending-edge order the
	// old serial edge sweep used — so accumulation order (and the argmax/
	// argmin tie-breaks) are bit-identical for every worker count.
	inStart, inEdges := edgeCSR(b.EdgeDst, n)
	c.deg = make([]int32, n)
	for i := 0; i < n; i++ {
		c.deg[i] = inStart[i+1] - inStart[i]
	}
	tensor.ParallelFor(n, aggWork(n, m, d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			es, ee := inStart[i], inStart[i+1]
			if es == ee {
				continue
			}
			meanRow := c.mean.Row(i)
			maxRow := c.maxM.Row(i)
			minRow := c.minM.Row(i)
			for t := es; t < ee; t++ {
				e := int(inEdges[t])
				first := t == es
				mrow := c.msgEdge.Row(e)
				for j, v := range mrow {
					meanRow[j] += v
					sumSq[i*d+j] += v * v
					if first || v > maxRow[j] {
						maxRow[j] = v
						c.argmax[i*d+j] = int32(e)
					}
					if first || v < minRow[j] {
						minRow[j] = v
						c.argmin[i*d+j] = int32(e)
					}
				}
			}
			inv := 1 / float32(c.deg[i])
			stdRow := c.stdM.Row(i)
			for j := range meanRow {
				meanRow[j] *= inv
				variance := sumSq[i*d+j]*inv - meanRow[j]*meanRow[j]
				if variance < 0 {
					variance = 0
				}
				stdRow[j] = float32(math.Sqrt(float64(variance) + stdEps))
			}
		}
	})

	// Scale and concatenate: [x | s*mean | s*max | s*min | s*std] for the
	// three scalers.
	c.upIn = tensor.New(n, p.In*(1+numAggregators*numScalers))
	aggs := []*tensor.Matrix{c.mean, c.maxM, c.minM, c.stdM}
	tensor.ParallelFor(n, (1+numAggregators*numScalers)*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := c.upIn.Row(i)
			copy(row[:p.In], x.Row(i))
			s1, s2, s3 := p.scalers(c.deg[i])
			off := p.In
			for _, s := range []float32{s1, s2, s3} {
				for _, agg := range aggs {
					arow := agg.Row(i)
					for j, v := range arow {
						row[off+j] = v * s
					}
					off += d
				}
			}
		}
	})
	out := p.Wupd.Forward(c.upIn)
	tensor.ReluInPlace(out)
	c.out = out
	return out, c
}

// Backward consumes dOut (gradient of Forward's output) and the cache,
// accumulates parameter gradients, and returns the gradient of the layer
// input x.
func (p *PNA) Backward(dOut *tensor.Matrix, c *PNACache) *tensor.Matrix {
	b := c.batch
	n := b.NumNodes
	m := b.NumEdges()
	d := p.In

	dAct := dOut.Clone()
	tensor.ReluBackward(dAct, c.out)
	dUpIn := p.Wupd.Backward(c.upIn, dAct)

	// Split dUpIn into the self part and the scaled aggregate parts.
	dX := tensor.New(n, d)
	dMean := tensor.New(n, d)
	dMax := tensor.New(n, d)
	dMin := tensor.New(n, d)
	dStd := tensor.New(n, d)
	tensor.ParallelFor(n, (1+numAggregators*numScalers)*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dUpIn.Row(i)
			copy(dX.Row(i), row[:d])
			s1, s2, s3 := p.scalers(c.deg[i])
			off := d
			for _, s := range []float32{s1, s2, s3} {
				for _, pair := range []struct{ dst *tensor.Matrix }{
					{dMean}, {dMax}, {dMin}, {dStd},
				} {
					drow := pair.dst.Row(i)
					for j := 0; j < d; j++ {
						drow[j] += row[off+j] * s
					}
					off += d
				}
			}
		}
	})

	// Back through the aggregators into per-edge message gradients. Each
	// edge's dMsgEdge row is written only by that edge's iteration, so the
	// edge range partitions freely.
	dMsgEdge := tensor.New(m, d)
	tensor.ParallelFor(m, 8*d, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			dst := int(b.EdgeDst[e])
			deg := c.deg[dst]
			if deg == 0 {
				continue
			}
			inv := 1 / float32(deg)
			dRow := dMsgEdge.Row(e)
			meanRow := c.mean.Row(dst)
			stdRow := c.stdM.Row(dst)
			dMeanRow := dMean.Row(dst)
			dStdRow := dStd.Row(dst)
			mRow := c.msgEdge.Row(e)
			for j := 0; j < d; j++ {
				// mean: dm += dmean / deg
				g := dMeanRow[j] * inv
				// std: s = sqrt(V+eps), V = E[m²]−E[m]²;
				// dV/dm_e = 2/deg·(m_e − mean); ds/dV = 1/(2s).
				g += dStdRow[j] / (2 * stdRow[j]) * 2 * inv * (mRow[j] - meanRow[j])
				dRow[j] += g
			}
		}
	})
	// max/min route to the recorded arg edges. Node i only touches edges
	// whose destination is i, so the node partition writes disjoint rows;
	// this phase completes before the scatter below reads dMsgEdge.
	tensor.ParallelFor(n, 4*d, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if c.deg[i] == 0 {
				continue
			}
			dMaxRow := dMax.Row(i)
			dMinRow := dMin.Row(i)
			for j := 0; j < d; j++ {
				if e := c.argmax[i*d+j]; e >= 0 {
					dMsgEdge.Row(int(e))[j] += dMaxRow[j]
				}
				if e := c.argmin[i*d+j]; e >= 0 {
					dMsgEdge.Row(int(e))[j] += dMinRow[j]
				}
			}
		}
	})

	// Per-edge gradients back to the source-node messages and edge
	// features. Scatter by source via the CSR index so each worker owns a
	// node range and sums that node's outgoing edges in ascending edge
	// order — the serial loop's exact accumulation order.
	dMsgNode := tensor.New(n, d)
	outStart, outEdges := edgeCSR(b.EdgeSrc, n)
	tensor.ParallelFor(n, aggWork(n, m, d), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nrow := dMsgNode.Row(i)
			for t := outStart[i]; t < outStart[i+1]; t++ {
				drow := dMsgEdge.Row(int(outEdges[t]))
				for j := range drow {
					nrow[j] += drow[j]
				}
			}
		}
	})
	if p.Wedge != nil && c.edgeFeat != nil {
		p.Wedge.Backward(c.edgeFeat, dMsgEdge) // edge features are inputs; their gradient is discarded
	}
	tensor.AddInPlace(dX, p.Wmsg.Backward(c.x, dMsgNode))
	return dX
}

// FlopsForward estimates the layer's forward flop count for a batch with n
// nodes and m edges.
func (p *PNA) FlopsForward(n, m int) float64 {
	f := p.Wmsg.FlopsForward(n)
	f += float64(m) * float64(p.In) * 8 // message gather + aggregation
	f += p.Wupd.FlopsForward(n)
	if p.Wedge != nil {
		f += p.Wedge.FlopsForward(m)
	}
	return f
}
