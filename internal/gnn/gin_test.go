package gnn

import (
	"math"
	"testing"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

func TestGINForwardShapes(t *testing.T) {
	rng := vtime.NewRNG(1)
	b := testBatch(rng, 3, 0, 1)
	layer := NewGIN("g", 3, 5, rng)
	x := tensor.FromData(b.NumNodes, 3, b.NodeFeat)
	y, cache := layer.Forward(x, b)
	if y.Rows != b.NumNodes || y.Cols != 5 {
		t.Fatalf("output %dx%d", y.Rows, y.Cols)
	}
	dX := layer.Backward(y.Clone(), cache)
	if dX.Rows != b.NumNodes || dX.Cols != 3 {
		t.Fatalf("dX %dx%d", dX.Rows, dX.Cols)
	}
}

func TestGINSumAggregation(t *testing.T) {
	// Identity-ish check on the aggregation itself: with eps=0, agg row of
	// a node is its own features plus the sum of its in-neighbors'.
	g1 := &graph.Graph{
		ID: 0, NumNodes: 3, NodeFeatDim: 1,
		NodeFeat: []float32{1, 10, 100},
		EdgeSrc:  []int32{0, 1},
		EdgeDst:  []int32{2, 2},
		Y:        []float32{0},
	}
	b, err := graph.NewBatch([]*graph.Graph{g1})
	if err != nil {
		t.Fatal(err)
	}
	layer := NewGIN("g", 1, 2, vtime.NewRNG(2))
	x := tensor.FromData(3, 1, g1.NodeFeat)
	_, cache := layer.Forward(x, b)
	want := []float32{1, 10, 111} // node 2 receives 1 + 10
	for i, w := range want {
		if cache.agg.At(i, 0) != w {
			t.Fatalf("agg[%d] = %v, want %v", i, cache.agg.At(i, 0), w)
		}
	}
}

func TestGINGradCheck(t *testing.T) {
	rng := vtime.NewRNG(3)
	b := testBatch(rng, 3, 0, 1)
	layer := NewGIN("g", 3, 2, rng)
	layer.Eps = 0.3
	// Nudge the biases off zero so no pre-activation sits exactly on the
	// ReLU kink (where the finite-difference check is invalid).
	for _, p := range layer.Params() {
		if p.Name == "g.mlp1.b" || p.Name == "g.mlp2.b" {
			for i := range p.Value.Data {
				p.Value.Data[i] = 0.05 * float32(i+1)
			}
		}
	}
	x := tensor.FromData(b.NumNodes, 3, b.NodeFeat).Clone()
	target := make([]float32, b.NumNodes*2)
	for i := range target {
		target[i] = float32(rng.NormFloat64())
	}
	forward := func() float64 {
		y, _ := layer.Forward(x, b)
		loss, _ := MSELoss(y, target)
		return loss
	}
	y, cache := layer.Forward(x, b)
	_, dY := MSELoss(y, target)
	dX := layer.Backward(dY, cache)
	checkParamGrads(t, forward, layer.Params(), 1e-3, 5e-2)
	checkInputGrad(t, forward, x, dX, 1e-3, 5e-2)
}

func TestGINIsolatedNodes(t *testing.T) {
	g := &graph.Graph{ID: 0, NumNodes: 2, NodeFeatDim: 2, NodeFeat: []float32{1, 2, 3, 4}, Y: []float32{0}}
	b, err := graph.NewBatch([]*graph.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	layer := NewGIN("g", 2, 2, vtime.NewRNG(4))
	x := tensor.FromData(2, 2, g.NodeFeat)
	y, cache := layer.Forward(x, b)
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN output for edgeless graph")
		}
	}
	layer.Backward(y.Clone(), cache)
}

func TestGINCheaperThanPNA(t *testing.T) {
	gin := NewGIN("g", 32, 32, vtime.NewRNG(5))
	pna := NewPNA("p", 32, 32, 0, 1.2, vtime.NewRNG(5))
	if gin.FlopsForward(1000, 2000) >= pna.FlopsForward(1000, 2000) {
		t.Fatal("GIN should be cheaper than PNA per layer")
	}
}
