package gnn

import (
	"math"
	"testing"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// testBatch builds a small two-graph batch with irregular degrees and
// continuous random features (no aggregator ties).
func testBatch(rng *vtime.RNG, nodeDim, edgeDim, yDim int) *graph.Batch {
	mk := func(id int64, n int, edges [][2]int32) *graph.Graph {
		g := &graph.Graph{
			ID:          id,
			NumNodes:    n,
			NodeFeatDim: nodeDim,
			NodeFeat:    make([]float32, n*nodeDim),
			EdgeFeatDim: edgeDim,
			Y:           make([]float32, yDim),
		}
		for i := range g.NodeFeat {
			g.NodeFeat[i] = float32(rng.NormFloat64())
		}
		for _, e := range edges {
			g.EdgeSrc = append(g.EdgeSrc, e[0])
			g.EdgeDst = append(g.EdgeDst, e[1])
		}
		g.EdgeFeat = make([]float32, len(g.EdgeSrc)*edgeDim)
		for i := range g.EdgeFeat {
			g.EdgeFeat[i] = float32(rng.NormFloat64())
		}
		for i := range g.Y {
			g.Y[i] = float32(rng.NormFloat64())
		}
		return g
	}
	g1 := mk(0, 4, [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 1}, {0, 2}})
	g2 := mk(1, 3, [][2]int32{{0, 1}, {2, 1}, {1, 0}})
	b, err := graph.NewBatch([]*graph.Graph{g1, g2})
	if err != nil {
		panic(err)
	}
	return b
}

func TestLinearForwardKnown(t *testing.T) {
	l := NewLinear("l", 2, 2, vtime.NewRNG(1))
	copy(l.W.Value.Data, []float32{1, 2, 3, 4})
	copy(l.B.Value.Data, []float32{10, 20})
	x := tensor.FromData(1, 2, []float32{1, 1})
	y := l.Forward(x)
	if y.Data[0] != 14 || y.Data[1] != 26 {
		t.Fatalf("Forward = %v", y.Data)
	}
}

func TestLinearParamsListed(t *testing.T) {
	l := NewLinear("l", 3, 4, vtime.NewRNG(1))
	ps := l.Params()
	if len(ps) != 2 || ps[0].Name != "l.W" || ps[1].Name != "l.b" {
		t.Fatalf("Params = %+v", ps)
	}
	if ps[0].Value.Rows != 3 || ps[0].Value.Cols != 4 {
		t.Fatal("W shape wrong")
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := vtime.NewRNG(2)
	l := NewLinear("l", 3, 2, rng)
	x := tensor.New(5, 3)
	x.Randomize(rng)
	target := make([]float32, 10)
	for i := range target {
		target[i] = float32(rng.NormFloat64())
	}
	forward := func() float64 {
		y := l.Forward(x)
		loss, _ := MSELoss(y, target)
		return loss
	}
	// Analytic gradients.
	y := l.Forward(x)
	_, dY := MSELoss(y, target)
	dX := l.Backward(x, dY)

	checkParamGrads(t, forward, l.Params(), 1e-3, 2e-2)
	checkInputGrad(t, forward, x, dX, 1e-3, 2e-2)
}

func TestPNAGradCheck(t *testing.T) {
	rng := vtime.NewRNG(3)
	b := testBatch(rng, 3, 2, 1)
	layer := NewPNA("p", 3, 2, 2, 1.2, rng)
	x := tensor.FromData(b.NumNodes, 3, b.NodeFeat).Clone()
	target := make([]float32, b.NumNodes*2)
	for i := range target {
		target[i] = float32(rng.NormFloat64())
	}
	forward := func() float64 {
		y, _ := layer.Forward(x, b)
		loss, _ := MSELoss(y, target)
		return loss
	}
	y, cache := layer.Forward(x, b)
	_, dY := MSELoss(y, target)
	dX := layer.Backward(dY, cache)

	checkParamGrads(t, forward, layer.Params(), 1e-3, 5e-2)
	checkInputGrad(t, forward, x, dX, 1e-3, 5e-2)
}

func TestPNAWithoutEdgeFeatures(t *testing.T) {
	rng := vtime.NewRNG(4)
	b := testBatch(rng, 3, 0, 1)
	layer := NewPNA("p", 3, 4, 0, 1.2, rng)
	if layer.Wedge != nil {
		t.Fatal("edge transform created for edgeDim=0")
	}
	x := tensor.FromData(b.NumNodes, 3, b.NodeFeat)
	y, cache := layer.Forward(x, b)
	if y.Rows != b.NumNodes || y.Cols != 4 {
		t.Fatalf("output %dx%d", y.Rows, y.Cols)
	}
	dX := layer.Backward(y.Clone(), cache)
	if dX.Rows != b.NumNodes || dX.Cols != 3 {
		t.Fatalf("dX %dx%d", dX.Rows, dX.Cols)
	}
}

func TestPNAIsolatedNodes(t *testing.T) {
	// A graph with no edges must not crash or produce NaNs.
	g := &graph.Graph{
		ID: 0, NumNodes: 3, NodeFeatDim: 2,
		NodeFeat: []float32{1, 2, 3, 4, 5, 6},
		Y:        []float32{1},
	}
	b, err := graph.NewBatch([]*graph.Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	layer := NewPNA("p", 2, 2, 0, 1.2, vtime.NewRNG(5))
	x := tensor.FromData(3, 2, g.NodeFeat)
	y, cache := layer.Forward(x, b)
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("non-finite output %v", v)
		}
	}
	dX := layer.Backward(y.Clone(), cache)
	for _, v := range dX.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN gradient for isolated nodes")
		}
	}
}

func TestPNADegreeScalers(t *testing.T) {
	layer := NewPNA("p", 2, 2, 0, 1.5, vtime.NewRNG(6))
	s1, s2, s3 := layer.scalers(0)
	if s1 != 1 || s2 != 0 || s3 != 0 {
		t.Fatalf("deg-0 scalers = %v %v %v", s1, s2, s3)
	}
	_, amp2, att2 := layer.scalers(2)
	_, amp8, att8 := layer.scalers(8)
	if amp8 <= amp2 {
		t.Fatal("amplification not increasing with degree")
	}
	if att8 >= att2 {
		t.Fatal("attenuation not decreasing with degree")
	}
	// amp * att == 1 by construction.
	if got := amp2 * att2; math.Abs(float64(got)-1) > 1e-5 {
		t.Fatalf("amp*att = %v", got)
	}
}

func TestMeanPoolKnown(t *testing.T) {
	g1 := &graph.Graph{ID: 0, NumNodes: 2, NodeFeatDim: 1, NodeFeat: []float32{2, 4}, Y: []float32{0}}
	g2 := &graph.Graph{ID: 1, NumNodes: 1, NodeFeatDim: 1, NodeFeat: []float32{10}, Y: []float32{0}}
	b, _ := graph.NewBatch([]*graph.Graph{g1, g2})
	x := tensor.FromData(3, 1, []float32{2, 4, 10})
	out := MeanPool(x, b)
	if out.At(0, 0) != 3 || out.At(1, 0) != 10 {
		t.Fatalf("MeanPool = %v", out.Data)
	}
	dOut := tensor.FromData(2, 1, []float32{6, 5})
	dX := MeanPoolBackward(dOut, b)
	if dX.Data[0] != 3 || dX.Data[1] != 3 || dX.Data[2] != 5 {
		t.Fatalf("MeanPoolBackward = %v", dX.Data)
	}
}

func TestMeanPoolGradCheck(t *testing.T) {
	rng := vtime.NewRNG(7)
	b := testBatch(rng, 2, 0, 1)
	x := tensor.FromData(b.NumNodes, 2, b.NodeFeat).Clone()
	target := []float32{1, -1, 0.5, 2}
	forward := func() float64 {
		loss, _ := MSELoss(MeanPool(x, b), target)
		return loss
	}
	_, dP := MSELoss(MeanPool(x, b), target)
	dX := MeanPoolBackward(dP, b)
	checkInputGrad(t, forward, x, dX, 1e-3, 2e-2)
}

func TestMSELossKnown(t *testing.T) {
	pred := tensor.FromData(1, 2, []float32{1, 3})
	loss, grad := MSELoss(pred, []float32{0, 1})
	if math.Abs(loss-2.5) > 1e-9 { // (1 + 4)/2
		t.Fatalf("loss = %v", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 2 { // 2*diff/2
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestMSELossZero(t *testing.T) {
	pred := tensor.FromData(1, 2, []float32{3, -1})
	loss, grad := MSELoss(pred, []float32{3, -1})
	if loss != 0 || grad.Data[0] != 0 || grad.Data[1] != 0 {
		t.Fatal("perfect prediction has nonzero loss/grad")
	}
}

// checkParamGrads compares analytic parameter gradients (already
// accumulated in the params) against central finite differences of forward.
func checkParamGrads(t *testing.T, forward func() float64, params []*Param, h, tol float64) {
	t.Helper()
	for _, p := range params {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + float32(h)
			up := forward()
			p.Value.Data[i] = orig - float32(h)
			down := forward()
			p.Value.Data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := float64(p.Grad.Data[i])
			if !gradClose(analytic, numeric, tol) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}

// checkInputGrad compares the analytic input gradient against finite
// differences.
func checkInputGrad(t *testing.T, forward func() float64, x *tensor.Matrix, dX *tensor.Matrix, h, tol float64) {
	t.Helper()
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + float32(h)
		up := forward()
		x.Data[i] = orig - float32(h)
		down := forward()
		x.Data[i] = orig
		numeric := (up - down) / (2 * h)
		analytic := float64(dX.Data[i])
		if !gradClose(analytic, numeric, tol) {
			t.Fatalf("input[%d]: analytic %v vs numeric %v", i, analytic, numeric)
		}
	}
}

func gradClose(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return diff <= tol*scale
}
