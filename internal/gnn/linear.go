// Package gnn implements the neural-network layers HydraGNN is assembled
// from: dense (Linear) layers, the Principal Neighbourhood Aggregation (PNA)
// message-passing convolution of Corso et al. that the paper's model uses,
// mean-pooling readout, and the MSE loss — all with explicit, hand-written
// backward passes verified against finite differences.
package gnn

import (
	"fmt"

	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Matrix
	Grad  *tensor.Matrix
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Linear is a fully-connected layer y = x·W + b.
type Linear struct {
	In, Out int
	W       *Param // In×Out
	B       *Param // 1×Out
}

// NewLinear creates a Glorot-initialized dense layer.
func NewLinear(name string, in, out int, rng *vtime.RNG) *Linear {
	w := tensor.New(in, out)
	w.Randomize(rng)
	return &Linear{
		In:  in,
		Out: out,
		W:   &Param{Name: name + ".W", Value: w, Grad: tensor.New(in, out)},
		B:   &Param{Name: name + ".b", Value: tensor.New(1, out), Grad: tensor.New(1, out)},
	}
}

// Params returns the layer's learnables.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Forward computes y = x·W + b.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	if x.Cols != l.In {
		panic(fmt.Sprintf("gnn: linear %d-in got %d cols", l.In, x.Cols))
	}
	y := tensor.MatMul(x, l.W.Value)
	tensor.AddBiasRows(y, l.B.Value.Data)
	return y
}

// Backward accumulates parameter gradients and returns dx. x must be the
// input that produced the forward pass, dy the gradient of the output.
func (l *Linear) Backward(x, dy *tensor.Matrix) *tensor.Matrix {
	tensor.AddInPlace(l.W.Grad, tensor.MatMulAT(x, dy))
	tensor.BiasGrad(l.B.Grad.Data, dy)
	return tensor.MatMulBT(dy, l.W.Value)
}

// FlopsForward estimates the forward flop count for n rows.
func (l *Linear) FlopsForward(n int) float64 {
	return 2 * float64(n) * float64(l.In) * float64(l.Out)
}
