package gnn

// edgeCSR groups edge indices by the node listed in nodeOf (EdgeDst for
// incoming edges, EdgeSrc for outgoing): node i's edges are
// edges[start[i]:start[i+1]], in ascending edge order. That is exactly the
// order a serial sweep over all edges touches node i, so a parallel pass
// that partitions *nodes* and accumulates each node's edges from this
// index is bit-identical to the serial edge loop — no per-worker partials,
// no merge step, no reordered float adds.
func edgeCSR(nodeOf []int32, n int) (start, edges []int32) {
	start = make([]int32, n+1)
	for _, v := range nodeOf {
		start[v+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	cursor := make([]int32, n)
	copy(cursor, start[:n])
	edges = make([]int32, len(nodeOf))
	for e, v := range nodeOf {
		edges[cursor[v]] = int32(e)
		cursor[v]++
	}
	return start, edges
}

// aggWork estimates the scalar-op cost of aggregating one node's incident
// edges (ParallelFor's per-index work hint): a few ops per feature per
// average-degree edge plus the finalize pass.
func aggWork(n, m, d int) int {
	w := 4 * d
	if n > 0 {
		w += 4 * d * m / n
	}
	return w
}
