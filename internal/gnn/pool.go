package gnn

import (
	"fmt"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
)

// MeanPool averages node features per graph: out is NumGraphs×Cols. It is
// the readout between the convolution stack and the fully-connected head.
func MeanPool(x *tensor.Matrix, b *graph.Batch) *tensor.Matrix {
	if x.Rows != b.NumNodes {
		panic(fmt.Sprintf("gnn: pool over %d rows for %d nodes", x.Rows, b.NumNodes))
	}
	out := tensor.New(b.NumGraphs, x.Cols)
	counts := make([]float32, b.NumGraphs)
	for i := 0; i < x.Rows; i++ {
		g := int(b.GraphIndex[i])
		counts[g]++
		orow := out.Row(g)
		xrow := x.Row(i)
		for j := range xrow {
			orow[j] += xrow[j]
		}
	}
	for g := 0; g < b.NumGraphs; g++ {
		if counts[g] == 0 {
			continue
		}
		inv := 1 / counts[g]
		row := out.Row(g)
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// MeanPoolBackward distributes the pooled gradient back to the nodes.
func MeanPoolBackward(dOut *tensor.Matrix, b *graph.Batch) *tensor.Matrix {
	counts := make([]float32, b.NumGraphs)
	for i := 0; i < b.NumNodes; i++ {
		counts[int(b.GraphIndex[i])]++
	}
	dX := tensor.New(b.NumNodes, dOut.Cols)
	for i := 0; i < b.NumNodes; i++ {
		g := int(b.GraphIndex[i])
		if counts[g] == 0 {
			continue
		}
		inv := 1 / counts[g]
		drow := dX.Row(i)
		orow := dOut.Row(g)
		for j := range drow {
			drow[j] = orow[j] * inv
		}
	}
	return dX
}

// MSELoss returns the mean squared error between pred and target (both
// r×c) and the gradient dPred.
func MSELoss(pred *tensor.Matrix, target []float32) (float64, *tensor.Matrix) {
	if len(target) != len(pred.Data) {
		panic(fmt.Sprintf("gnn: %d predictions vs %d targets", len(pred.Data), len(target)))
	}
	dPred := tensor.New(pred.Rows, pred.Cols)
	var loss float64
	n := float64(len(target))
	for i, p := range pred.Data {
		diff := float64(p) - float64(target[i])
		loss += diff * diff
		dPred.Data[i] = float32(2 * diff / n)
	}
	return loss / n, dPred
}
