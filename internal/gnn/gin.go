package gnn

import (
	"fmt"

	"ddstore/internal/graph"
	"ddstore/internal/tensor"
	"ddstore/internal/vtime"
)

// GIN is a Graph Isomorphism Network convolution (Xu et al. 2019):
//
//	h_i' = MLP((1 + ε)·h_i + Σ_{j∈N(i)} h_j)
//
// HydraGNN's object-oriented design supports multiple message-passing
// policies; GIN is the second policy implemented here (PNA being the
// paper's evaluated one). GIN is cheaper per edge — sum aggregation, no
// degree scalers — and serves as the ablation partner for the convolution
// choice.
type GIN struct {
	In, Out int
	// Eps is the ε self-weight (learnable in the original; fixed here,
	// like PyG's default train_eps=false).
	Eps float32

	// MLP: two dense layers with ReLU in between.
	L1 *Linear
	L2 *Linear
}

// NewGIN creates a GIN layer with a 2-layer update MLP of width out.
func NewGIN(name string, in, out int, rng *vtime.RNG) *GIN {
	return &GIN{
		In:  in,
		Out: out,
		Eps: 0,
		L1:  NewLinear(name+".mlp1", in, out, rng),
		L2:  NewLinear(name+".mlp2", out, out, rng),
	}
}

// Params returns the layer's learnables.
func (g *GIN) Params() []*Param {
	return append(g.L1.Params(), g.L2.Params()...)
}

// GINCache holds the forward intermediates for Backward.
type GINCache struct {
	x     *tensor.Matrix // layer input
	agg   *tensor.Matrix // (1+eps)x + sum of neighbors
	h1    *tensor.Matrix // post-ReLU first MLP layer
	out   *tensor.Matrix // post-ReLU output
	batch *graph.Batch
}

// Forward runs the convolution.
func (g *GIN) Forward(x *tensor.Matrix, b *graph.Batch) (*tensor.Matrix, *GINCache) {
	if x.Rows != b.NumNodes || x.Cols != g.In {
		panic(fmt.Sprintf("gnn: gin input %dx%d for %d nodes, %d dims", x.Rows, x.Cols, b.NumNodes, g.In))
	}
	c := &GINCache{x: x, batch: b}
	agg := x.Clone()
	if g.Eps != 0 {
		tensor.ScaleInPlace(agg, 1+g.Eps)
	}
	for e := 0; e < b.NumEdges(); e++ {
		src := x.Row(int(b.EdgeSrc[e]))
		dst := agg.Row(int(b.EdgeDst[e]))
		for j := range src {
			dst[j] += src[j]
		}
	}
	c.agg = agg
	h1 := g.L1.Forward(agg)
	tensor.ReluInPlace(h1)
	c.h1 = h1
	out := g.L2.Forward(h1)
	tensor.ReluInPlace(out)
	c.out = out
	return out, c
}

// Backward accumulates parameter gradients and returns the input gradient.
func (g *GIN) Backward(dOut *tensor.Matrix, c *GINCache) *tensor.Matrix {
	d := dOut.Clone()
	tensor.ReluBackward(d, c.out)
	d = g.L2.Backward(c.h1, d)
	tensor.ReluBackward(d, c.h1)
	dAgg := g.L1.Backward(c.agg, d)

	// d/dx of (1+eps)x + scatter-sum: self term plus reverse scatter.
	dX := dAgg.Clone()
	if g.Eps != 0 {
		tensor.ScaleInPlace(dX, 1+g.Eps)
	}
	b := c.batch
	for e := 0; e < b.NumEdges(); e++ {
		srcRow := dX.Row(int(b.EdgeSrc[e]))
		dstRow := dAgg.Row(int(b.EdgeDst[e]))
		for j := range srcRow {
			srcRow[j] += dstRow[j]
		}
	}
	return dX
}

// FlopsForward estimates the forward flop count for n nodes and m edges.
func (g *GIN) FlopsForward(n, m int) float64 {
	return float64(m)*float64(g.In)*2 + g.L1.FlopsForward(n) + g.L2.FlopsForward(n)
}
