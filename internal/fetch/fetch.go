// Package fetch is the shared batch-load engine behind both of DDStore's
// data planes. The in-process RMA store (internal/core) and the TCP chunk
// group (internal/transport) used to carry separate copies of the same
// pipeline — id dedup, cache claims with leader/follower flights, per-owner
// grouping, bounded fan-out, follower waits, latency capture. This package
// owns that pipeline once; a plane plugs in through the small Plane
// interface and contributes only what is genuinely its own: owner
// arithmetic, the wire (RMA Gets, framed TCP multi-gets), and per-plane
// concerns like window-lock epochs or replica failover.
//
// The pipeline, in order:
//
//	ids ──dedup──▶ unique ids ──validate──▶ OwnerOf for every id
//	     ──claim──▶ cache hits / leader flights / follower flights
//	     ──serve──▶ hits decoded from cached bytes (a memory read)
//	     ──group──▶ fetchable ids bucketed by owner, owners sorted
//	     ──fan-out─▶ ≤ Parallelism owners fetched concurrently, each
//	                 wrapped in BeginEpoch/EndEpoch when the plane has them
//	     ──wait───▶ follower flights awaited after own deliveries
//	     ──assemble▶ results written back to every requested position
//
// Every error path fails the flights this load still leads, so coalesced
// waiters in other goroutines never block forever. Per-unique-id latencies
// are recorded into a bounded window; LatencyStats summarizes them as
// p50/p95/p99.
package fetch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/obs/tracectx"
	"ddstore/internal/stats"
)

// Deliver hands one fetched sample back to the engine: its
// header-validated raw bytes, the lazy decode over those bytes, and the
// per-sample fetch latency. lz owns whatever buffer reference the plane
// attached when it called graph.DecodeLazy; the engine retains additional
// references (under the cache's shard locks) for cache entries and
// coalesced waiters, so the plane never needs to know who else aliases the
// buffer — it just releases its own handle when its batch loop is done.
type Deliver func(id int64, raw []byte, lz *graph.Lazy, lat time.Duration)

// Plane is what a data plane contributes to the engine: owner arithmetic
// and the actual wire transfer. FetchOwner receives the unique ids grouped
// on one owner and must deliver every one of them (or return an error);
// ids arrive sorted in the batch's first-appearance order. Deliveries are
// serialized by the engine, so FetchOwner needs no locking of its own even
// when several owners are fetched concurrently.
type Plane interface {
	// OwnerOf maps a sample id to its owner token, or errors for ids the
	// plane cannot serve. Owner tokens only need to be stable and sortable:
	// the engine groups by them and fetches owners in ascending order.
	OwnerOf(id int64) (int, error)
	// Local reports whether the owner's samples live in this process's
	// memory. Local ids bypass the cache — they are already memory reads.
	Local(owner int) bool
	// FetchOwner transfers the given ids from one owner, calling deliver
	// once per id with header-validated bytes.
	FetchOwner(owner int, ids []int64, deliver Deliver) error
}

// EpochPlane is the optional lock hook: when a plane implements it, the
// engine brackets every FetchOwner call in BeginEpoch/EndEpoch and charges
// the returned acquisition cost to the first sample delivered from that
// owner (how a per-batch lock amortizes in practice). EndEpoch runs even
// when FetchOwner fails, so no error path can leak an epoch.
type EpochPlane interface {
	Plane
	// BeginEpoch opens an access epoch on owner and returns its cost.
	// Planes without a lock for this owner (or mode) return (0, nil).
	BeginEpoch(owner int) (time.Duration, error)
	// EndEpoch closes the epoch opened by BeginEpoch.
	EndEpoch(owner int) error
}

// TracedPlane is the optional distributed-tracing hook: when a plane
// implements it and a load carries a valid trace context, the engine mints
// a child context per owner fan-out and hands it to FetchOwnerTraced, so
// the plane can propagate it over the wire and merge the server's timing
// feedback into the span tree. Planes without the hook (or loads without a
// context) use plain FetchOwner and tracing stays off.
type TracedPlane interface {
	Plane
	// FetchOwnerTraced is FetchOwner carrying the child trace context the
	// engine minted for this owner's sub-request.
	FetchOwnerTraced(owner int, ids []int64, tc tracectx.Context, deliver Deliver) error
}

// Config assembles an Engine.
type Config struct {
	// Plane supplies owner arithmetic and the wire. Required.
	Plane Plane
	// Cache, when non-nil, adds the hot-sample cache with singleflight
	// coalescing over remote ids. When nil the engine skips the claim
	// machinery entirely — no flight maps are ever allocated.
	Cache *cache.Cache
	// Parallelism bounds how many owners one Load fetches from
	// concurrently. 0 means min(#owners, GOMAXPROCS); 1 is the serial
	// per-owner loop.
	Parallelism int
	// Serial forces the serial loop regardless of Parallelism — set under
	// machine models, whose virtual clocks charge costs through a
	// non-thread-safe RNG.
	Serial bool
	// Now is the clock latencies are measured on (a virtual clock under
	// machine models). Nil means wall time.
	Now func() time.Duration
	// OnLocalBytes, when set, charges the cost of reading n cached or
	// coalesced bytes out of local memory (the machine model's LocalRead).
	OnLocalBytes func(n int)
	// ErrPrefix tags engine-originated errors with the owning plane's
	// package name ("core", "transport").
	ErrPrefix string
	// WindowSize bounds the per-sample latency window LatencyStats
	// summarizes (default 4096).
	WindowSize int
	// Metrics, when non-nil, receives every per-sample latency into the
	// canonical ddstore_fetch_latency_seconds histogram.
	Metrics *obs.Registry
	// Spans, when non-nil, receives one span per owner fetch and one per
	// cache-hit batch — the engine's contribution to the Chrome trace.
	Spans *obs.SpanRing
}

// LatencySummary is a percentile digest of recent per-sample load
// latencies. Count is the total number of samples ever recorded; the
// percentiles cover the most recent WindowSize of them.
type LatencySummary struct {
	Count         int64
	P50, P95, P99 time.Duration
}

// Engine runs the shared batch-load pipeline over one Plane. Safe for
// concurrent Loads.
type Engine struct {
	plane   Plane
	epochs  EpochPlane  // nil when the plane has no lock hooks
	traced  TracedPlane // nil when the plane has no tracing hook
	cache   *cache.Cache
	par     int
	serial  bool
	now     func() time.Duration
	onLocal func(n int)
	prefix  string

	latHist *obs.Histogram // nil unless Config.Metrics was set
	spans   *obs.SpanRing  // nil unless Config.Spans was set

	latMu   sync.Mutex
	window  []time.Duration
	widx    int
	wlen    int
	latSeen int64
}

// New builds an engine from cfg. It panics when cfg.Plane is nil — a plane
// is not optional.
func New(cfg Config) *Engine {
	if cfg.Plane == nil {
		panic("fetch: Config.Plane is required")
	}
	e := &Engine{
		plane:   cfg.Plane,
		cache:   cfg.Cache,
		par:     cfg.Parallelism,
		serial:  cfg.Serial,
		now:     cfg.Now,
		onLocal: cfg.OnLocalBytes,
		prefix:  cfg.ErrPrefix,
		spans:   cfg.Spans,
	}
	if cfg.Metrics != nil {
		e.latHist = obs.FetchLatencyHistogram(cfg.Metrics)
	}
	if ep, ok := cfg.Plane.(EpochPlane); ok {
		e.epochs = ep
	}
	if tp, ok := cfg.Plane.(TracedPlane); ok {
		e.traced = tp
	}
	if e.now == nil {
		// Real-time engines record on the shared wall-clock epoch, so span
		// rings from different processes merge into one aligned Chrome
		// trace. Machine models pass their own virtual clocks instead.
		e.now = obs.EpochNow
	}
	if e.prefix == "" {
		e.prefix = "fetch"
	}
	n := cfg.WindowSize
	if n <= 0 {
		n = 4096
	}
	e.window = make([]time.Duration, n)
	return e
}

// results collects deliveries across the fan-out workers. One mutex guards
// the lazy/latency maps and the leader-flight table, so planes deliver
// without locking of their own.
type results struct {
	mu      sync.Mutex
	lazies  map[int64]*graph.Lazy
	lats    map[int64]time.Duration
	flights map[int64]*cache.Flight // leader flights still to complete
}

// deliver records one sample and completes its flight, if this load leads
// one. The cache entry gets its own reference on the sample's backing
// buffer (retained here, released by the cache on evict/replace/Reset),
// independent of the one lz already owns.
func (r *results) deliver(id int64, raw []byte, lz *graph.Lazy, lat time.Duration) {
	r.mu.Lock()
	r.lazies[id] = lz
	r.lats[id] = lat
	f, flying := r.flights[id]
	if flying {
		delete(r.flights, id)
	}
	r.mu.Unlock()
	if flying {
		ref := cache.Ref(nil)
		if lr := lz.Ref(); lr != nil {
			lr.Retain()
			ref = lr
		}
		f.DeliverRef(raw, ref)
	}
}

// set records a sample served without a fetch (cache hit, follower wait).
func (r *results) set(id int64, lz *graph.Lazy, lat time.Duration) {
	r.mu.Lock()
	r.lazies[id] = lz
	r.lats[id] = lat
	r.mu.Unlock()
}

// failRemaining fails every flight this load still leads — mandatory on
// every error path, or coalesced waiters block forever.
func (r *results) failRemaining(err error) {
	r.mu.Lock()
	flights := r.flights
	r.flights = nil
	r.mu.Unlock()
	for _, f := range flights {
		f.Fail(err)
	}
}

// releaseAll drops every buffer reference the collected lazies still hold
// — error-path hygiene so an abandoned load returns its pooled buffers
// instead of pinning them until the GC collects the wreckage.
func (r *results) releaseAll() {
	r.mu.Lock()
	for _, lz := range r.lazies {
		lz.Release()
	}
	r.mu.Unlock()
}

// Load runs the pipeline for one batch and returns the decoded graphs and
// per-position latencies, both in request order. Duplicate ids share one
// fetch (and one graph pointer).
func (e *Engine) Load(ids []int64) ([]*graph.Graph, []time.Duration, error) {
	lzs, lats, err := e.LoadLazy(ids)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*graph.Graph, len(lzs))
	var seen map[int64]*graph.Graph
	for i, lz := range lzs {
		if lz == nil {
			continue
		}
		// Duplicate positions carry independent views over one buffer;
		// materialize once per id so duplicates share a graph pointer (and
		// the extra views just drop their references).
		if g, ok := seen[lz.ID()]; ok {
			out[i] = g
			lz.Release()
			continue
		}
		out[i] = lz.Graph()
		if seen == nil {
			seen = make(map[int64]*graph.Graph, len(lzs))
		}
		seen[lz.ID()] = out[i]
	}
	return out, lats, nil
}

// LoadLazy runs the pipeline for one batch and returns header-validated
// lazy graphs and per-position latencies, both in request order. Tensors
// are not materialized: each Lazy decodes on first Graph call, and a
// caller that never touches a sample's tensors releases its buffer with
// Release instead. Duplicate ids share one fetch, but every position gets
// its own independent view (each holding its own buffer reference), so
// callers consume strictly by position.
func (e *Engine) LoadLazy(ids []int64) ([]*graph.Lazy, []time.Duration, error) {
	return e.loadLazy(ids, tracectx.Context{})
}

// LoadLazyTraced is LoadLazy under a distributed trace: tc is the caller's
// span (the batch's root, or an intermediate), and when the plane
// implements TracedPlane every per-owner fan-out propagates a child
// context minted from it. With an invalid context this is exactly
// LoadLazy.
func (e *Engine) LoadLazyTraced(ids []int64, tc tracectx.Context) ([]*graph.Lazy, []time.Duration, error) {
	return e.loadLazy(ids, tc)
}

func (e *Engine) loadLazy(ids []int64, tc tracectx.Context) ([]*graph.Lazy, []time.Duration, error) {
	out := make([]*graph.Lazy, len(ids))
	lats := make([]time.Duration, len(ids))
	if len(ids) == 0 {
		return out, lats, nil
	}

	// Dedup in first-appearance order, validating every id before any
	// cache claim — an invalid id can never strand a flight.
	uniq := make([]int64, 0, len(ids))
	owners := make(map[int64]int, len(ids))
	for _, id := range ids {
		if _, seen := owners[id]; seen {
			continue
		}
		owner, err := e.plane.OwnerOf(id)
		if err != nil {
			return nil, nil, err
		}
		owners[id] = owner
		uniq = append(uniq, id)
	}

	res := &results{
		lazies: make(map[int64]*graph.Lazy, len(uniq)),
		lats:   make(map[int64]time.Duration, len(uniq)),
	}

	// Claim phase: only with a cache, and only for non-local ids. Hits are
	// resolved bytes (plus our own reference on their backing buffer),
	// leader flights are ours to complete, follower flights are someone
	// else's fetch we wait on later.
	type hit struct {
		val []byte
		ref cache.Ref
	}
	toFetch := uniq
	var resolved map[int64]hit
	var followers map[int64]*cache.Flight
	if e.cache != nil {
		toFetch = make([]int64, 0, len(uniq))
		for _, id := range uniq {
			if e.plane.Local(owners[id]) {
				toFetch = append(toFetch, id)
				continue
			}
			val, ref, f := e.cache.ClaimRef(id)
			switch {
			case f == nil:
				if resolved == nil {
					resolved = make(map[int64]hit)
				}
				resolved[id] = hit{val, ref}
			case f.Leader():
				if res.flights == nil {
					res.flights = make(map[int64]*cache.Flight)
				}
				res.flights[id] = f
				toFetch = append(toFetch, id)
			default:
				if followers == nil {
					followers = make(map[int64]*cache.Flight)
				}
				followers[id] = f
			}
		}
	}
	fail := func(err error) error {
		res.failRemaining(err)
		res.releaseAll()
		return err
	}

	// Serve cache hits: a memory read plus a header re-validation; the hit's
	// buffer reference moves into the Lazy. Iterating uniq (not the map)
	// keeps virtual-clock charging deterministic.
	hitStart := e.now()
	var hitBytes int64
	for _, id := range uniq {
		h, ok := resolved[id]
		if !ok {
			continue
		}
		before := e.now()
		if e.onLocal != nil {
			e.onLocal(len(h.val))
		}
		hitBytes += int64(len(h.val))
		lz, err := graph.DecodeLazy(h.val, h.ref)
		if err != nil {
			// Cannot happen: only header-validated bytes are cached.
			if h.ref != nil {
				h.ref.Release()
			}
			return nil, nil, fail(fmt.Errorf("%s: cached sample %d: %w", e.prefix, id, err))
		}
		res.set(id, lz, e.now()-before)
	}
	if e.spans != nil && len(resolved) > 0 {
		e.spans.Record(obs.Span{
			Name: "cache-hits", Cat: "fetch", Owner: -1,
			Samples: len(resolved), Bytes: hitBytes, CacheHit: true,
			Start: hitStart, Dur: e.now() - hitStart,
			TraceID: tc.TraceID, ParentID: tc.SpanID,
		})
	}

	// Group fetchable ids by owner; fetch owners in ascending order.
	if len(toFetch) > 0 {
		byOwner := make(map[int][]int64)
		for _, id := range toFetch {
			byOwner[owners[id]] = append(byOwner[owners[id]], id)
		}
		keys := make([]int, 0, len(byOwner))
		for owner := range byOwner {
			keys = append(keys, owner)
		}
		sort.Ints(keys)
		if err := e.forEachOwner(keys, byOwner, res, tc); err != nil {
			return nil, nil, fail(err)
		}
		for _, id := range toFetch {
			if _, ok := res.lazies[id]; !ok {
				return nil, nil, fail(fmt.Errorf("%s: sample %d was not delivered by its owner", e.prefix, id))
			}
		}
	}

	// Followers wait only after our own fetches delivered, so one load
	// carrying both the leader and a follower of an id cannot deadlock
	// against itself. Each follower receives its own buffer reference
	// (retained by the leader's delivery), which moves into the Lazy.
	for _, id := range uniq {
		f, ok := followers[id]
		if !ok {
			continue
		}
		before := e.now()
		raw, ref, err := f.WaitRef()
		if err != nil {
			return nil, nil, fail(fmt.Errorf("%s: coalesced fetch of sample %d: %w", e.prefix, id, err))
		}
		if e.onLocal != nil {
			e.onLocal(len(raw))
		}
		lz, err := graph.DecodeLazy(raw, ref)
		if err != nil {
			if ref != nil {
				ref.Release()
			}
			return nil, nil, fail(fmt.Errorf("%s: coalesced sample %d: %w", e.prefix, id, err))
		}
		res.set(id, lz, e.now()-before)
	}

	// Duplicate positions each receive their own view (one buffer
	// reference per position, via Clone), so releasing or materializing
	// one slot never invalidates another slot of the same id.
	if len(uniq) == len(ids) {
		for pos, id := range ids {
			out[pos] = res.lazies[id]
			lats[pos] = res.lats[id]
		}
	} else {
		taken := make(map[int64]bool, len(uniq))
		for pos, id := range ids {
			lz := res.lazies[id]
			if lz != nil && taken[id] {
				lz = lz.Clone()
			}
			taken[id] = true
			out[pos] = lz
			lats[pos] = res.lats[id]
		}
	}
	e.record(uniq, res.lats)
	return out, lats, nil
}

// fetchOwner brackets one owner's transfer in its epoch (when the plane
// has one) and folds the lock cost into the first delivered sample. With
// span tracing on, the whole owner transfer becomes one "fetch-owner" span
// carrying the owner token, sample count, and delivered byte volume. Under
// a distributed trace, each owner's sub-request gets its own child context
// — the span id the server's segments hang off in the merged trace.
func (e *Engine) fetchOwner(owner int, ids []int64, res *results, tc tracectx.Context) error {
	child := tracectx.Context{}
	if tc.Valid() && e.traced != nil {
		child = tc.Child()
	}
	var start time.Duration
	var fetchedBytes int64 // written only by this owner's deliver chain
	if e.spans != nil {
		start = e.now()
	}
	var lockCost time.Duration
	if e.epochs != nil {
		cost, err := e.epochs.BeginEpoch(owner)
		if err != nil {
			return err
		}
		lockCost = cost
	}
	first := true
	deliver := func(id int64, raw []byte, lz *graph.Lazy, lat time.Duration) {
		if first {
			lat += lockCost
			first = false
		}
		fetchedBytes += int64(len(raw))
		res.deliver(id, raw, lz, lat)
	}
	var err error
	if child.Valid() {
		err = e.traced.FetchOwnerTraced(owner, ids, child, deliver)
	} else {
		err = e.plane.FetchOwner(owner, ids, deliver)
	}
	if e.epochs != nil {
		if uerr := e.epochs.EndEpoch(owner); uerr != nil && err == nil {
			err = uerr
		}
	}
	if e.spans != nil {
		e.spans.Record(obs.Span{
			Name: "fetch-owner", Cat: "fetch", Owner: owner,
			Samples: len(ids), Bytes: fetchedBytes,
			Start: start, Dur: e.now() - start,
			TraceID: child.TraceID, SpanID: child.SpanID, ParentID: tc.SpanID,
		})
	}
	return err
}

// parallelism resolves the worker budget for a batch touching n owners.
func (e *Engine) parallelism(n int) int {
	if n <= 1 || e.serial {
		return 1
	}
	p := e.par
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	return p
}

// forEachOwner fetches every owner, fanning out across a bounded worker
// pool. Errors are recorded per owner and the lowest-owner error is
// returned — the same deterministic choice the serial loop makes — but
// every owner still completes, so its flights are delivered or failed
// either way.
func (e *Engine) forEachOwner(keys []int, byOwner map[int][]int64, res *results, tc tracectx.Context) error {
	par := e.parallelism(len(keys))
	if par <= 1 {
		for _, owner := range keys {
			if err := e.fetchOwner(owner, byOwner[owner], res, tc); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(keys))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = e.fetchOwner(keys[i], byOwner[keys[i]], res, tc)
			}
		}()
	}
	for i := range keys {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// record appends one batch's per-unique-id latencies to the window and the
// metrics histogram.
func (e *Engine) record(uniq []int64, lats map[int64]time.Duration) {
	e.latMu.Lock()
	for _, id := range uniq {
		e.window[e.widx] = lats[id]
		e.widx = (e.widx + 1) % len(e.window)
		if e.wlen < len(e.window) {
			e.wlen++
		}
	}
	e.latSeen += int64(len(uniq))
	e.latMu.Unlock()
	if e.latHist != nil {
		for _, id := range uniq {
			e.latHist.ObserveDuration(lats[id])
		}
	}
}

// LatencyStats digests the recent per-sample latency window into
// p50/p95/p99. The zero summary is returned before any load.
func (e *Engine) LatencyStats() LatencySummary {
	e.latMu.Lock()
	defer e.latMu.Unlock()
	s := LatencySummary{Count: e.latSeen}
	if e.wlen == 0 {
		return s
	}
	ds := make([]time.Duration, e.wlen)
	copy(ds, e.window[:e.wlen])
	s.P50 = stats.DurationPercentile(ds, 50)
	s.P95 = stats.DurationPercentile(ds, 95)
	s.P99 = stats.DurationPercentile(ds, 99)
	return s
}
