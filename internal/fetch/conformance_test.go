// Cross-plane conformance suite: the same batch-load scenarios run against
// both real adapters of the shared fetch engine — the in-process RMA store
// (internal/core) and the TCP chunk group (internal/transport) — and must
// behave identically: same graphs, same dedup semantics, same cache
// behaviour, and no stranded coalescing flight on any error path.
package fetch_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/graph"
	"ddstore/internal/transport"
)

// confPlane is one adapter under test. Both planes satisfy ddp.DataPlane —
// that shared surface is itself part of what this suite locks down.
type confPlane struct {
	name  string
	ds    *datasets.Dataset
	plane ddp.DataPlane
	// [localLo, localHi) is the id range served from this process's own
	// memory, which bypasses the cache (RMA only; empty for TCP).
	localLo, localHi int64
}

func (p confPlane) localCount() int64 { return p.localHi - p.localLo }

// remoteID returns an id that is not local, so it exercises the cache.
func (p confPlane) remoteID() int64 {
	n := int64(p.plane.Len())
	for id := int64(0); id < n; id++ {
		if id < p.localLo || id >= p.localHi {
			return id
		}
	}
	return 0
}

func confDataset() *datasets.Dataset {
	return datasets.HomoLumo(datasets.Config{NumGraphs: 24})
}

func fastPolicy() transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: 2, BaseDelay: time.Millisecond,
		ReadTimeout: 100 * time.Millisecond, DialTimeout: time.Second, Seed: 1,
	}
}

// checkBatch asserts a loaded batch matches the dataset ground truth at
// every position — the cross-plane "identical results" contract.
func checkBatch(t *testing.T, p confPlane, ids []int64, out []*graph.Graph, lats []time.Duration) {
	t.Helper()
	if len(out) != len(ids) {
		t.Fatalf("%s: %d graphs for %d ids", p.name, len(out), len(ids))
	}
	if lats != nil && len(lats) != len(ids) {
		t.Fatalf("%s: %d latencies for %d ids", p.name, len(lats), len(ids))
	}
	for i, id := range ids {
		want, err := p.ds.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		got := out[i]
		if got == nil || got.ID != id || got.NumNodes != want.NumNodes || got.Y[0] != want.Y[0] {
			t.Fatalf("%s: position %d: want sample %d, got %+v", p.name, i, id, got)
		}
	}
}

// loadWithin fails the test if the load has not completed within d — the
// symptom of a stranded coalescing flight is a Load that never returns.
func loadWithin(t *testing.T, p confPlane, ids []int64, d time.Duration) ([]*graph.Graph, []time.Duration, error) {
	t.Helper()
	type res struct {
		out  []*graph.Graph
		lats []time.Duration
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		out, lats, err := p.plane.LoadTimed(ids)
		ch <- res{out, lats, err}
	}()
	select {
	case r := <-ch:
		return r.out, r.lats, r.err
	case <-time.After(d):
		t.Fatalf("%s: load of %v did not complete within %v (stranded flight?)", p.name, ids, d)
		return nil, nil, nil
	}
}

// runConformance drives the shared scenario table against one adapter.
func runConformance(t *testing.T, p confPlane) {
	n := int64(p.plane.Len())

	// Scenario: duplicate ids share one fetch and one graph pointer.
	ids := []int64{5, 1, 5, 3, 1, 5}
	out, lats, err := p.plane.LoadTimed(ids)
	if err != nil {
		t.Fatalf("%s: dup-id load: %v", p.name, err)
	}
	checkBatch(t, p, ids, out, lats)
	if out[0] != out[2] || out[0] != out[5] {
		t.Errorf("%s: duplicate ids did not share one graph", p.name)
	}

	// Scenario: an out-of-range id fails the whole batch, cleanly. The
	// retry proves no flight was stranded by the failure.
	if _, _, err := p.plane.LoadTimed([]int64{1, n + 100}); err == nil {
		t.Fatalf("%s: out-of-range id accepted", p.name)
	}
	if _, _, err := p.plane.LoadTimed([]int64{-1}); err == nil {
		t.Fatalf("%s: negative id accepted", p.name)
	}
	out, lats, err = loadWithin(t, p, []int64{1}, 5*time.Second)
	if err != nil {
		t.Fatalf("%s: load after failed batch: %v", p.name, err)
	}
	checkBatch(t, p, []int64{1}, out, lats)

	// Scenario: cache misses become hits. Warm every id, then reload all of
	// them: the second pass must hit for every non-local id and miss for
	// none.
	all := make([]int64, n)
	for i := range all {
		all[i] = int64(i)
	}
	if _, _, err := p.plane.LoadTimed(all); err != nil {
		t.Fatalf("%s: warm load: %v", p.name, err)
	}
	before := p.plane.CacheStats()
	out, lats, err = p.plane.LoadTimed(all)
	if err != nil {
		t.Fatalf("%s: cached load: %v", p.name, err)
	}
	checkBatch(t, p, all, out, lats)
	after := p.plane.CacheStats()
	wantHits := n - p.localCount()
	if got := after.Hits - before.Hits; got != wantHits {
		t.Errorf("%s: cached reload hit %d of %d remote ids", p.name, got, wantHits)
	}
	if after.Misses != before.Misses {
		t.Errorf("%s: cached reload missed %d times", p.name, after.Misses-before.Misses)
	}

	// Scenario: latency percentiles are populated and monotone after real
	// loads.
	if s := p.plane.LatencyStats(); s.Count == 0 {
		t.Errorf("%s: latency window empty after loads", p.name)
	} else if s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("%s: percentiles not monotone: %+v", p.name, s)
	}

	// Scenario: concurrent loads over overlapping ids (run with -race).
	// Coalescing means correctness, not counters, is the contract here: the
	// cache may or may not still hold an id when a goroutine claims it.
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := int64(0); i < 15; i++ {
				batch := []int64{
					(seed + i) % n,
					(seed*3 + i*7) % n,
					(seed + i) % n, // duplicate on purpose
				}
				out, lats, err := p.plane.LoadTimed(batch)
				if err != nil {
					t.Errorf("%s: hammer: %v", p.name, err)
					return
				}
				checkBatch(t, p, batch, out, lats)
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func TestConformanceRMA(t *testing.T) {
	ds := confDataset()
	w, err := comm.NewWorld(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *comm.Comm) error {
		st, err := core.Open(c, ds, core.Options{
			CacheBytes:       1 << 20,
			FetchParallelism: 2,
		})
		if err != nil {
			return err
		}
		lo, hi := st.LocalRange()
		runConformance(t, confPlane{
			name:    fmt.Sprintf("rma-rank%d", c.Rank()),
			ds:      ds,
			plane:   st,
			localLo: lo,
			localHi: hi,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConformanceTCP(t *testing.T) {
	ds := confDataset()
	var addrs []string
	for i := int64(0); i < 3; i++ {
		srv, err := transport.Serve("127.0.0.1:0", confChunk(t, ds, i*8, (i+1)*8))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	grp, err := transport.NewGroupReplicas([][]string{addrs}, transport.GroupOptions{
		Client:           transport.ClientOptions{Policy: fastPolicy()},
		CacheBytes:       1 << 20,
		FetchParallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	runConformance(t, confPlane{name: "tcp", ds: ds, plane: grp})
}

func confChunk(t *testing.T, ds *datasets.Dataset, lo, hi int64) *transport.MemChunk {
	t.Helper()
	gs := make([]*graph.Graph, 0, hi-lo)
	for id := lo; id < hi; id++ {
		g, err := ds.Sample(id)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return transport.NewMemChunk(lo, gs)
}

// TestConformanceTCPOwnerDeath is the owner-death-mid-batch scenario, which
// only the TCP plane can express (an in-process RMA rank cannot die alone).
// A single-replica group losing a peer must fail batches spanning that
// peer's range promptly — releasing every coalesced waiter — while batches
// on surviving peers keep working.
func TestConformanceTCPOwnerDeath(t *testing.T) {
	ds := confDataset()
	var addrs []string
	var servers []*transport.Server
	for i := int64(0); i < 3; i++ {
		srv, err := transport.Serve("127.0.0.1:0", confChunk(t, ds, i*8, (i+1)*8))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	grp, err := transport.NewGroupReplicas([][]string{addrs}, transport.GroupOptions{
		Client:           transport.ClientOptions{Policy: fastPolicy()},
		CacheBytes:       1 << 20,
		FetchParallelism: 2,
		FailoverCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	p := confPlane{name: "tcp-owner-death", ds: ds, plane: grp}

	// Sanity before the kill.
	out, lats, err := p.plane.LoadTimed([]int64{2, 9, 17})
	if err != nil {
		t.Fatal(err)
	}
	checkBatch(t, p, []int64{2, 9, 17}, out, lats)

	servers[1].Close() // ids [8,16) lose their only owner

	// A batch spanning the dead owner fails promptly; concurrent loads of
	// the same dead id must all be released (no waiter may hang on the
	// failed leader's flight). Id 10 was never cached, so every goroutine
	// goes through the claim machinery.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := loadWithin(t, p, []int64{2, 10}, 10*time.Second); err == nil {
				t.Error("batch spanning a dead owner succeeded with one replica")
			}
		}()
	}
	wg.Wait()

	// Surviving owners keep serving, and the failed flight did not poison
	// later loads of other ids.
	out, lats, err = loadWithin(t, p, []int64{2, 17, 23}, 5*time.Second)
	if err != nil {
		t.Fatalf("surviving owners broken after peer death: %v", err)
	}
	checkBatch(t, p, []int64{2, 17, 23}, out, lats)
}

// TestConformanceTCPFailover: with a second replica the same owner death is
// invisible — the engine's owner fetch fails over inside the plane and the
// batch still completes.
func TestConformanceTCPFailover(t *testing.T) {
	ds := confDataset()
	var replicas [][]string
	var first []*transport.Server
	for r := 0; r < 2; r++ {
		var addrs []string
		for i := int64(0); i < 3; i++ {
			srv, err := transport.Serve("127.0.0.1:0", confChunk(t, ds, i*8, (i+1)*8))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			if r == 0 {
				first = append(first, srv)
			}
			addrs = append(addrs, srv.Addr())
		}
		replicas = append(replicas, addrs)
	}
	grp, err := transport.NewGroupReplicas(replicas, transport.GroupOptions{
		Client:           transport.ClientOptions{Policy: fastPolicy()},
		FetchParallelism: 2,
		FailoverCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer grp.Close()
	p := confPlane{name: "tcp-failover", ds: ds, plane: grp}

	first[1].Close() // replica 0 loses ids [8,16); replica 1 still has them

	all := make([]int64, 24)
	for i := range all {
		all[i] = int64(i)
	}
	out, lats, err := loadWithin(t, p, all, 15*time.Second)
	if err != nil {
		t.Fatalf("load with a live second replica failed: %v", err)
	}
	checkBatch(t, p, all, out, lats)
}
