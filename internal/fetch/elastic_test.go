package fetch

// Elastic-ownership conformance: the engine resolves OwnerOf once per Load,
// so a plane whose answers change between Loads (a shard map advancing
// under live traffic) must not poison the cache, leak coalesced flights,
// or skew the latency window. These tests drive a plane whose owner tokens
// carry a switchable generation, mirroring how the transport plane packs
// (generation, member) into the token.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddstore/internal/graph"
)

// genPlane serves ids [0, n) striped over members (member = id % members),
// with owner tokens derived from a switchable generation:
// token = gen<<8 | member. Advancing the generation changes every token,
// exactly like a shard map apply changes the transport plane's packed
// owner tokens between Loads.
type genPlane struct {
	n       int64
	members int
	gen     atomic.Int64
	local   atomic.Int64 // token whose samples are "local"; -1 for none

	failAll atomic.Bool   // every FetchOwner call errors
	entered chan struct{} // when non-nil, signaled once per FetchOwner entry
	gateMu  sync.Mutex
	gate    chan error // when non-nil, the next FetchOwner blocks on it once

	mu      sync.Mutex
	fetched map[int64]int // id -> times delivered by a fetch
	tokens  map[int]int   // owner token -> ids fetched through it
}

func newGenPlane(n int64, members int) *genPlane {
	p := &genPlane{n: n, members: members, fetched: map[int64]int{}, tokens: map[int]int{}}
	p.gen.Store(1)
	p.local.Store(-1)
	return p
}

func (p *genPlane) token(gen int64, member int) int { return int(gen)<<8 | member }

func (p *genPlane) OwnerOf(id int64) (int, error) {
	if id < 0 || id >= p.n {
		return 0, fmt.Errorf("gen: no owner for sample %d", id)
	}
	return p.token(p.gen.Load(), int(id)%p.members), nil
}

func (p *genPlane) Local(owner int) bool { return int64(owner) == p.local.Load() }

// takeGate claims the one-shot gate, so at most one in-flight FetchOwner
// ever blocks on it (a second call proceeds normally).
func (p *genPlane) takeGate() chan error {
	p.gateMu.Lock()
	defer p.gateMu.Unlock()
	g := p.gate
	p.gate = nil
	return g
}

func (p *genPlane) FetchOwner(owner int, ids []int64, deliver Deliver) error {
	if p.entered != nil {
		select {
		case p.entered <- struct{}{}:
		default:
		}
	}
	if g := p.takeGate(); g != nil {
		if err := <-g; err != nil {
			return err
		}
	}
	if p.failAll.Load() {
		return errors.New("gen: owner no longer holds these shards")
	}
	for _, id := range ids {
		raw := testGraph(id).Encode()
		lz, err := graph.DecodeLazy(raw, nil)
		if err != nil {
			return err
		}
		deliver(id, raw, lz, time.Duration(id)*time.Microsecond)
		p.mu.Lock()
		p.fetched[id]++
		p.tokens[owner]++
		p.mu.Unlock()
	}
	return nil
}

func (p *genPlane) fetchCount(id int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fetched[id]
}

func (p *genPlane) tokenCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.tokens)
}

// loadAndCheck loads ids and verifies every returned graph carries its own
// id (the poison detector: a wrong cache mapping would surface here).
func loadAndCheck(t *testing.T, e *Engine, ids []int64) {
	t.Helper()
	out, _, err := e.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range out {
		if g == nil {
			t.Fatalf("position %d (id %d): nil graph", i, ids[i])
		}
		if g.ID != ids[i] {
			t.Fatalf("position %d: got sample %d, want %d (cache poisoned?)", i, g.ID, ids[i])
		}
		if len(g.Y) != 1 || g.Y[0] != float32(ids[i]) {
			t.Fatalf("sample %d: wrong payload Y=%v", ids[i], g.Y)
		}
	}
}

func TestOwnerChangeBetweenLoadsKeepsCacheByID(t *testing.T) {
	// The cache is keyed by sample id, not by owner token: after the map
	// advances, a previously cached id is still a hit — same bytes, no
	// refetch through the new owner — and the payload stays correct.
	p := newGenPlane(20, 4)
	e := New(Config{Plane: p, Cache: newCache(1 << 20)})

	loadAndCheck(t, e, []int64{5, 6, 7})
	for _, id := range []int64{5, 6, 7} {
		if got := p.fetchCount(id); got != 1 {
			t.Fatalf("sample %d fetched %d times under generation 1, want 1", id, got)
		}
	}

	p.gen.Store(2) // every owner token changes
	loadAndCheck(t, e, []int64{5, 6, 7})
	for _, id := range []int64{5, 6, 7} {
		if got := p.fetchCount(id); got != 1 {
			t.Fatalf("sample %d refetched after owner change (count %d), want cache hit", id, got)
		}
	}

	// An uncached id under the new generation fetches through a new token.
	loadAndCheck(t, e, []int64{9})
	if got := p.fetchCount(9); got != 1 {
		t.Fatalf("sample 9 fetched %d times, want 1", got)
	}
}

func TestOwnerBecomesLocalBypassesCache(t *testing.T) {
	// A remote->local ownership transition (this process gained the shard)
	// must route reads to local memory, not the stale remote-cache entry.
	p := newGenPlane(20, 4)
	e := New(Config{Plane: p, Cache: newCache(1 << 20)})

	loadAndCheck(t, e, []int64{5}) // remote under generation 1, cached
	if got := p.fetchCount(5); got != 1 {
		t.Fatalf("fetch count %d, want 1", got)
	}

	p.gen.Store(3)
	p.local.Store(int64(p.token(3, 5%4))) // id 5's generation-3 owner is local
	loadAndCheck(t, e, []int64{5})
	if got := p.fetchCount(5); got != 2 {
		t.Fatalf("local read after ownership gain went to the cache (fetch count %d, want 2)", got)
	}
}

func TestOwnerChangeFailureFailsFlightsPromptly(t *testing.T) {
	// A fetch that dies because its owner moved mid-load must fail the
	// coalesced flights it leads: a concurrent follower returns the error
	// instead of hanging, and the next load of the same id starts a fresh
	// flight and succeeds.
	p := newGenPlane(10, 2)
	p.gen.Store(2)
	p.entered = make(chan struct{}, 1)
	gate := make(chan error)
	p.gateMu.Lock()
	p.gate = gate
	p.gateMu.Unlock()
	p.failAll.Store(true)
	e := New(Config{Plane: p, Cache: newCache(1 << 20)})

	errs := make(chan error, 2)
	go func() {
		_, _, err := e.Load([]int64{3})
		errs <- err
	}()
	<-p.entered // leader is inside FetchOwner; its flight is claimed
	go func() {
		_, _, err := e.Load([]int64{3})
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the second load claim (follower)
	gate <- nil                       // unblock the leader; failAll makes its fetch die
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("load succeeded, want owner-moved error")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("load hung: a coalesced flight leaked after the failed fetch")
		}
	}

	// Flight table is clean: a fresh load leads its own flight and succeeds.
	p.failAll.Store(false)
	loadAndCheck(t, e, []int64{3})
	if got := p.fetchCount(3); got != 1 {
		t.Fatalf("post-recovery fetch count %d, want 1", got)
	}
}

func TestLatencyWindowConsistentAcrossOwnerChange(t *testing.T) {
	// Every unique id loaded lands in the latency window exactly once per
	// load, whether its owner token is old or new — the window's count and
	// percentiles never skew across a generation flip.
	p := newGenPlane(12, 3)
	e := New(Config{Plane: p}) // no cache: the flip forces a clean refetch

	ids := make([]int64, 12)
	for i := range ids {
		ids[i] = int64(i)
	}
	loadAndCheck(t, e, ids)
	if got := e.LatencyStats().Count; got != 12 {
		t.Fatalf("latency count after generation 1 = %d, want 12", got)
	}

	p.gen.Store(7) // generations may jump; tokens just need to be fresh
	loadAndCheck(t, e, ids)
	ls := e.LatencyStats()
	if ls.Count != 24 {
		t.Fatalf("latency count after generation 7 = %d, want 24", ls.Count)
	}
	if ls.P50 < 0 || ls.P95 < ls.P50 || ls.P99 < ls.P95 {
		t.Fatalf("inconsistent percentiles across owner change: p50=%v p95=%v p99=%v", ls.P50, ls.P95, ls.P99)
	}
	// Both generations' tokens were actually used for grouping: 3 member
	// tokens per generation, 2 generations.
	if got := p.tokenCount(); got != 6 {
		t.Fatalf("distinct owner tokens used = %d, want 6", got)
	}
}
