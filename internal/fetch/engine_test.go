package fetch

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
)

// testGraph builds a tiny valid graph for sample id.
func testGraph(id int64) *graph.Graph {
	return &graph.Graph{
		ID: id, NumNodes: 2, NodeFeatDim: 1, NodeFeat: []float32{1, 2},
		EdgeSrc: []int32{0}, EdgeDst: []int32{1}, EdgeFeatDim: 1,
		EdgeFeat: []float32{3}, Y: []float32{float32(id)},
	}
}

// countRef counts Retain/Release calls so tests can observe how the
// engine manages buffer references on delivered samples. The conceptual
// initial reference (the one DecodeLazy takes ownership of) is not
// counted: a balanced lifecycle ends with releases == retains + 1.
type countRef struct {
	retains  atomic.Int32
	releases atomic.Int32
}

func (r *countRef) Retain()  { r.retains.Add(1) }
func (r *countRef) Release() { r.releases.Add(1) }

// mockPlane serves ids [0, n) striped over owners (owner = id % owners).
// It records which ids each FetchOwner call carried and tracks the maximum
// number of concurrent FetchOwner calls ever in flight.
type mockPlane struct {
	n      int64
	owners int
	local  int // owner token whose samples are "local"; -1 for none

	delay    time.Duration                   // per FetchOwner call
	failWhen func(owner int, id int64) error // non-nil error aborts the call

	mu       sync.Mutex
	fetched  map[int64]int // id -> times delivered by a fetch
	calls    int
	inFlight int32
	maxFly   int32
	refs     map[int64][]*countRef // id -> one ref per delivery
}

func newMockPlane(n int64, owners int) *mockPlane {
	return &mockPlane{
		n: n, owners: owners, local: -1,
		fetched: map[int64]int{},
		refs:    map[int64][]*countRef{},
	}
}

func (p *mockPlane) OwnerOf(id int64) (int, error) {
	if id < 0 || id >= p.n {
		return 0, fmt.Errorf("mock: no owner for sample %d", id)
	}
	return int(id) % p.owners, nil
}

func (p *mockPlane) Local(owner int) bool { return owner == p.local }

func (p *mockPlane) FetchOwner(owner int, ids []int64, deliver Deliver) error {
	fly := atomic.AddInt32(&p.inFlight, 1)
	for {
		max := atomic.LoadInt32(&p.maxFly)
		if fly <= max || atomic.CompareAndSwapInt32(&p.maxFly, max, fly) {
			break
		}
	}
	defer atomic.AddInt32(&p.inFlight, -1)
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.mu.Lock()
	p.calls++
	p.mu.Unlock()
	for _, id := range ids {
		if p.failWhen != nil {
			if err := p.failWhen(owner, id); err != nil {
				return err
			}
		}
		raw := testGraph(id).Encode()
		ref := &countRef{}
		lz, err := graph.DecodeLazy(raw, ref)
		if err != nil {
			return err
		}
		deliver(id, raw, lz, time.Duration(id)*time.Microsecond)
		p.mu.Lock()
		p.fetched[id]++
		p.refs[id] = append(p.refs[id], ref)
		p.mu.Unlock()
	}
	return nil
}

func (p *mockPlane) fetchCount(id int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fetched[id]
}

// epochMock wraps mockPlane with lock hooks so epoch bracketing is
// observable.
type epochMock struct {
	*mockPlane
	cost     time.Duration
	mu       sync.Mutex
	begins   map[int]int
	ends     map[int]int
	beginErr error
}

func (p *epochMock) BeginEpoch(owner int) (time.Duration, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.begins == nil {
		p.begins = map[int]int{}
	}
	if p.beginErr != nil {
		return 0, p.beginErr
	}
	p.begins[owner]++
	return p.cost, nil
}

func (p *epochMock) EndEpoch(owner int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ends == nil {
		p.ends = map[int]int{}
	}
	p.ends[owner]++
	return nil
}

func newCache(budget int64) *cache.Cache {
	return cache.New(cache.Options{MaxBytes: budget, Shards: 1})
}

func TestLoadDedupAndAssembly(t *testing.T) {
	p := newMockPlane(20, 3)
	e := New(Config{Plane: p})
	ids := []int64{7, 3, 7, 11, 3, 7, 0}
	out, lats, err := e.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ids) || len(lats) != len(ids) {
		t.Fatalf("got %d graphs, %d latencies for %d ids", len(out), len(lats), len(ids))
	}
	for i, id := range ids {
		if out[i] == nil || out[i].ID != id {
			t.Fatalf("position %d: want sample %d, got %+v", i, id, out[i])
		}
	}
	if out[0] != out[2] || out[0] != out[5] {
		t.Error("duplicate ids should share one graph pointer")
	}
	for _, id := range []int64{7, 3, 11, 0} {
		if n := p.fetchCount(id); n != 1 {
			t.Errorf("sample %d fetched %d times, want 1", id, n)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	e := New(Config{Plane: newMockPlane(4, 2)})
	out, lats, err := e.Load(nil)
	if err != nil || len(out) != 0 || len(lats) != 0 {
		t.Fatalf("empty batch: out=%v lats=%v err=%v", out, lats, err)
	}
}

func TestOutOfRangeIDFailsBeforeAnyClaim(t *testing.T) {
	p := newMockPlane(10, 2)
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	// The invalid id comes last, after ids that would otherwise claim
	// flights; validation must reject the batch before any claim happens.
	if _, _, err := e.Load([]int64{1, 2, 99}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if p.fetchCount(1) != 0 {
		t.Error("fetch ran despite validation failure")
	}
	// No flight may be stranded: a fresh claim on id 1 must lead.
	_, f := c.Claim(1)
	if f == nil || !f.Leader() {
		t.Fatal("claim after failed validation did not lead — a flight leaked")
	}
	f.Fail(errors.New("cleanup"))
}

func TestCacheHitsSkipTheWire(t *testing.T) {
	p := newMockPlane(10, 2)
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	if _, _, err := e.Load([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Load([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{1, 2, 3} {
		if n := p.fetchCount(id); n != 1 {
			t.Errorf("sample %d fetched %d times, want 1 (second load must hit)", id, n)
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Errorf("cache stats %+v, want 3 hits / 3 misses", st)
	}
}

func TestNilCacheSkipsClaimMachinery(t *testing.T) {
	p := newMockPlane(10, 2)
	e := New(Config{Plane: p})
	if _, _, err := e.Load([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Load([]int64{1, 2}); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, id := range []int64{1, 2} {
		if p.fetched[id] != 2 {
			t.Errorf("sample %d fetched %d times, want 2 (no cache)", id, p.fetched[id])
		}
		for _, ref := range p.refs[id] {
			// Without a cache the engine takes no extra references; Load's
			// materialization releases the Lazy's own one.
			if n := ref.retains.Load(); n != 0 {
				t.Errorf("sample %d: %d extra retains without a cache", id, n)
			}
			if n := ref.releases.Load(); n != 1 {
				t.Errorf("sample %d: %d releases, want exactly the Lazy's own", id, n)
			}
		}
	}
}

func TestLocalOwnersBypassCache(t *testing.T) {
	p := newMockPlane(10, 2)
	p.local = 0 // even ids are local
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	for i := 0; i < 2; i++ {
		if _, _, err := e.Load([]int64{2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.fetchCount(2); n != 2 {
		t.Errorf("local sample fetched %d times, want 2 (never cached)", n)
	}
	if n := p.fetchCount(3); n != 1 {
		t.Errorf("remote sample fetched %d times, want 1 (cached)", n)
	}
}

func TestConcurrentMissesCoalesce(t *testing.T) {
	p := newMockPlane(10, 2)
	p.delay = 20 * time.Millisecond
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, _, err := e.Load([]int64{5})
			if err != nil {
				t.Error(err)
				return
			}
			if out[0].ID != 5 {
				t.Errorf("got sample %d", out[0].ID)
			}
		}()
	}
	wg.Wait()
	if n := p.fetchCount(5); n != 1 {
		t.Errorf("sample 5 fetched %d times across 8 concurrent loads, want 1", n)
	}
	if st := c.Stats(); st.Coalesced != 7 {
		t.Errorf("coalesced %d, want 7", st.Coalesced)
	}
}

// TestLeaderFailureReleasesFollowers is the regression for the flight-leak
// bug class: a failed leader in one Load must release the followers parked
// in another Load promptly, and the failed flight must be gone so a retry
// can lead a fresh fetch.
func TestLeaderFailureReleasesFollowers(t *testing.T) {
	p := newMockPlane(10, 2)
	var failing atomic.Bool
	failing.Store(true)
	entered := make(chan struct{}, 1)
	p.failWhen = func(owner int, id int64) error {
		select {
		case entered <- struct{}{}:
		default:
		}
		if failing.Load() {
			// Hold the flight open long enough for the follower to park.
			time.Sleep(30 * time.Millisecond)
			return errors.New("injected owner death")
		}
		return nil
	}
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})

	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := e.Load([]int64{5})
		leaderErr <- err
	}()
	<-entered // leader owns the flight and is inside FetchOwner

	followerErr := make(chan error, 1)
	go func() {
		_, _, err := e.Load([]int64{5})
		followerErr <- err
	}()

	deadline := time.After(2 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case err := <-leaderErr:
			if err == nil || !strings.Contains(err.Error(), "injected owner death") {
				t.Fatalf("leader error = %v", err)
			}
		case err := <-followerErr:
			if err == nil || !strings.Contains(err.Error(), "coalesced") {
				t.Fatalf("follower error = %v", err)
			}
		case <-deadline:
			t.Fatal("a coalesced waiter was never released after the leader failed")
		}
	}

	// The failed flight must not linger: a retry leads a fresh fetch.
	failing.Store(false)
	out, _, err := e.Load([]int64{5})
	if err != nil {
		t.Fatalf("retry after leader failure: %v", err)
	}
	if out[0].ID != 5 {
		t.Fatalf("retry returned sample %d", out[0].ID)
	}
}

func TestPartialDeliveryFailsFlights(t *testing.T) {
	p := newMockPlane(10, 2)
	// Owner 1 dies; owner 0 delivers fine. The flights owner 1 led must be
	// failed, not stranded.
	p.failWhen = func(owner int, id int64) error {
		if owner == 1 {
			return errors.New("owner 1 down")
		}
		return nil
	}
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	if _, _, err := e.Load([]int64{2, 3}); err == nil {
		t.Fatal("load with a dead owner succeeded")
	}
	// Both ids must be claimable again as leaders (delivered id 2's flight
	// completed; failed id 3's flight was failed, not leaked).
	for _, id := range []int64{2, 3} {
		val, f := c.Claim(id)
		if f == nil {
			if id != 2 {
				t.Fatalf("sample %d resolved from cache after a failed load", id)
			}
			if _, err := graph.Decode(val); err != nil {
				t.Fatalf("cached bytes for %d corrupt: %v", id, err)
			}
			continue
		}
		if !f.Leader() {
			t.Fatalf("sample %d claim did not lead — flight leaked", id)
		}
		f.Fail(errors.New("cleanup"))
	}
}

func TestUndeliveredSampleIsAnError(t *testing.T) {
	p := newMockPlane(10, 1)
	silent := silentPlane{p}
	e := New(Config{Plane: silent, ErrPrefix: "mock"})
	_, _, err := e.Load([]int64{4})
	if err == nil || !strings.Contains(err.Error(), "was not delivered") {
		t.Fatalf("err = %v, want 'was not delivered'", err)
	}
}

// silentPlane claims success without delivering anything.
type silentPlane struct{ *mockPlane }

func (p silentPlane) FetchOwner(int, []int64, Deliver) error { return nil }

func TestEpochBracketing(t *testing.T) {
	base := newMockPlane(12, 3)
	ep := &epochMock{mockPlane: base, cost: 5 * time.Millisecond}
	var now atomic.Int64
	e := New(Config{
		Plane:  ep,
		Serial: true,
		Now:    func() time.Duration { return time.Duration(now.Load()) },
	})
	_, lats, err := e.Load([]int64{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	ep.mu.Lock()
	for owner := 0; owner < 3; owner++ {
		if ep.begins[owner] != 1 || ep.ends[owner] != 1 {
			t.Errorf("owner %d: begins=%d ends=%d, want 1/1", owner, ep.begins[owner], ep.ends[owner])
		}
	}
	ep.mu.Unlock()
	// The mock delivers id*1µs; the lock cost lands on each owner's first
	// delivered sample (first-appearance order: 0, 1, 2 lead their owners).
	for i, id := range []int64{0, 1, 2, 3, 4, 5} {
		want := time.Duration(id) * time.Microsecond
		if id < 3 {
			want += ep.cost
		}
		if lats[i] != want {
			t.Errorf("sample %d latency %v, want %v", id, lats[i], want)
		}
	}
}

func TestEpochEndsEvenWhenFetchFails(t *testing.T) {
	base := newMockPlane(12, 3)
	base.failWhen = func(owner int, id int64) error {
		if owner == 1 {
			return errors.New("boom")
		}
		return nil
	}
	ep := &epochMock{mockPlane: base}
	e := New(Config{Plane: ep, Serial: true})
	if _, _, err := e.Load([]int64{0, 1, 2}); err == nil {
		t.Fatal("load with failing owner succeeded")
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.begins[1] != 1 || ep.ends[1] != 1 {
		t.Fatalf("failing owner: begins=%d ends=%d, want 1/1 (epoch leaked)", ep.begins[1], ep.ends[1])
	}
}

func TestBeginEpochErrorAborts(t *testing.T) {
	base := newMockPlane(12, 2)
	ep := &epochMock{mockPlane: base, beginErr: errors.New("lock refused")}
	e := New(Config{Plane: ep, Serial: true})
	if _, _, err := e.Load([]int64{0, 1}); err == nil || !strings.Contains(err.Error(), "lock refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestSerialNeverOverlapsOwners(t *testing.T) {
	p := newMockPlane(16, 4)
	p.delay = 5 * time.Millisecond
	e := New(Config{Plane: p, Serial: true, Parallelism: 4})
	if _, _, err := e.Load([]int64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if max := atomic.LoadInt32(&p.maxFly); max != 1 {
		t.Errorf("serial engine overlapped %d owner fetches", max)
	}
}

func TestParallelismBoundsFanOut(t *testing.T) {
	p := newMockPlane(16, 4)
	p.delay = 20 * time.Millisecond
	e := New(Config{Plane: p, Parallelism: 2})
	if _, _, err := e.Load([]int64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if max := atomic.LoadInt32(&p.maxFly); max > 2 {
		t.Errorf("fan-out reached %d concurrent owners, cap is 2", max)
	} else if max < 2 {
		t.Logf("fan-out reached only %d concurrent owners (timing-dependent)", max)
	}
}

func TestLowestOwnerErrorWins(t *testing.T) {
	p := newMockPlane(16, 4)
	p.failWhen = func(owner int, id int64) error {
		if owner >= 2 {
			return fmt.Errorf("owner %d down", owner)
		}
		return nil
	}
	e := New(Config{Plane: p, Parallelism: 4})
	_, _, err := e.Load([]int64{0, 1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "owner 2 down") {
		t.Fatalf("err = %v, want the lowest failing owner's error", err)
	}
}

func TestLatencyWindowAndPercentiles(t *testing.T) {
	p := newMockPlane(100, 1)
	var now atomic.Int64
	e := New(Config{
		Plane:      p,
		WindowSize: 8,
		Now:        func() time.Duration { return time.Duration(now.Load()) },
	})
	// 16 unique samples: the window keeps the last 8 (ids 8..15, whose mock
	// latencies are 8..15µs).
	for id := int64(0); id < 16; id++ {
		if _, _, err := e.Load([]int64{id}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.LatencyStats()
	if s.Count != 16 {
		t.Errorf("Count = %d, want 16", s.Count)
	}
	if s.P50 < 8*time.Microsecond || s.P50 > 15*time.Microsecond {
		t.Errorf("P50 = %v, outside the retained window [8µs,15µs]", s.P50)
	}
	if s.P99 < s.P50 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("percentiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
}

func TestLatencyStatsZeroBeforeAnyLoad(t *testing.T) {
	e := New(Config{Plane: newMockPlane(4, 1)})
	if s := e.LatencyStats(); s != (LatencySummary{}) {
		t.Errorf("pre-load summary = %+v, want zero", s)
	}
}

func TestNewPanicsWithoutPlane(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted a nil Plane")
		}
	}()
	New(Config{})
}

// TestCacheEntryRetainsDeliveredBuffer pins the reference flow of a
// leader delivery: the cache entry gets its own retained reference, the
// Lazy's own reference is released by Load's materialization, and the
// cache's reference is only released when the entry leaves (Reset).
func TestCacheEntryRetainsDeliveredBuffer(t *testing.T) {
	p := newMockPlane(10, 2)
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	if _, _, err := e.Load([]int64{1}); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	ref := p.refs[1][0]
	p.mu.Unlock()
	if n := ref.retains.Load(); n != 1 {
		t.Errorf("retains = %d, want 1 (the cache entry's)", n)
	}
	if n := ref.releases.Load(); n != 1 {
		t.Errorf("releases = %d, want 1 (the Lazy's own, on materialization)", n)
	}
	c.Reset()
	if n := ref.releases.Load(); n != 2 {
		t.Errorf("releases after Reset = %d, want 2 (cache entry released)", n)
	}
}

// TestFollowerReceivesOwnReference pins the coalesced path: the leader's
// delivery retains one reference per parked follower, and every
// follower's Lazy releases it on materialization, leaving only the cache
// entry's reference outstanding.
func TestFollowerReceivesOwnReference(t *testing.T) {
	p := newMockPlane(10, 2)
	p.delay = 20 * time.Millisecond
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c})
	const loads = 6
	var wg sync.WaitGroup
	for w := 0; w < loads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Load([]int64{5}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	p.mu.Lock()
	ref := p.refs[5][0]
	p.mu.Unlock()
	// Retains: one for the cache entry, one per coalesced follower, one
	// per late load that hit the fresh entry. Releases: the Lazy's own +
	// one per follower/hit materialization. The cache entry's reference is
	// still live, so retains and releases differ by exactly... nothing —
	// the Lazy's uncounted initial reference balances the live entry.
	wantRetains := 1 + st.Coalesced + st.Hits
	if n := int64(ref.retains.Load()); n != wantRetains {
		t.Errorf("retains = %d, want %d (cache + %d followers + %d hits)",
			n, wantRetains, st.Coalesced, st.Hits)
	}
	if n := int64(ref.releases.Load()); n != 1+st.Coalesced+st.Hits {
		t.Errorf("releases = %d, want %d", n, 1+st.Coalesced+st.Hits)
	}
}

// TestConcurrentHammer drives many overlapping loads through one cached
// engine; run with -race to check the pipeline's synchronization.
func TestConcurrentHammer(t *testing.T) {
	p := newMockPlane(64, 4)
	c := newCache(1 << 10) // tiny budget forces constant eviction churn
	e := New(Config{Plane: p, Cache: c})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				ids := []int64{
					(seed + int64(i)) % 64,
					(seed + int64(i)*7) % 64,
					(seed + int64(i)) % 64, // duplicate on purpose
				}
				out, lats, err := e.Load(ids)
				if err != nil {
					t.Error(err)
					return
				}
				if len(lats) != len(ids) {
					t.Errorf("%d latencies for %d ids", len(lats), len(ids))
				}
				for j, id := range ids {
					if out[j].ID != id {
						t.Errorf("position %d: want %d, got %d", j, id, out[j].ID)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

func TestEngineMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewSpanRing(64, 5)
	p := newMockPlane(8, 2)
	c := newCache(1 << 20)
	e := New(Config{Plane: p, Cache: c, Metrics: reg, Spans: ring})

	ids := []int64{0, 1, 2, 3}
	if _, _, err := e.Load(ids); err != nil {
		t.Fatal(err)
	}
	// Second load of the same ids: all cache hits.
	if _, _, err := e.Load(ids); err != nil {
		t.Fatal(err)
	}

	// Every unique id of both loads landed in the canonical histogram.
	if got := obs.FetchLatencyHistogram(reg).Count(); got != 8 {
		t.Fatalf("histogram count = %d, want 8", got)
	}

	var fetchSpans, hitSpans int
	var fetchedSamples int
	for _, s := range ring.Spans() {
		switch s.Name {
		case "fetch-owner":
			fetchSpans++
			fetchedSamples += s.Samples
			if s.Owner < 0 || s.Bytes <= 0 {
				t.Fatalf("fetch-owner span missing owner/bytes: %+v", s)
			}
			if s.Rank != 5 {
				t.Fatalf("span rank = %d, want ring rank 5", s.Rank)
			}
		case "cache-hits":
			hitSpans++
			if !s.CacheHit || s.Samples != 4 || s.Bytes <= 0 {
				t.Fatalf("cache-hits span: %+v", s)
			}
		}
	}
	// First load: two owners fetched; second load: one aggregate hit span.
	if fetchSpans != 2 || fetchedSamples != 4 {
		t.Fatalf("fetch-owner spans = %d covering %d samples, want 2/4", fetchSpans, fetchedSamples)
	}
	if hitSpans != 1 {
		t.Fatalf("cache-hits spans = %d, want 1", hitSpans)
	}
}
