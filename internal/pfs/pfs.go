// Package pfs simulates a shared parallel filesystem (GPFS on Summit,
// Lustre on Perlmutter) for the at-scale experiments. Files are virtual —
// only sizes and access patterns are tracked; the actual sample bytes come
// from the deterministic dataset generators — and every access charges its
// modeled cost to the calling rank's virtual clock.
//
// The model captures the three effects the paper's evaluation hinges on:
//
//   - Metadata pressure: opening a file costs a metadata operation whose
//     latency grows with filesystem-wide concurrency. PFF pays it per
//     sample; CFF and DDStore's preloader amortize it via an fd cache.
//   - Shared-file congestion: concurrent random reads inside the same
//     container file (the CFF pattern) pay an extra multiplier.
//   - OS page cache: each node caches recently-read blocks with read-ahead,
//     which is why the small containerized Ising dataset loads at memory
//     speed at the median but keeps a disk-bound tail (paper §4.4).
//
// For determinism, each rank owns a private page-cache slice of the node's
// capacity and a private fd cache; contention multipliers derive from the
// configured rank count rather than racy live counters.
package pfs

import (
	"fmt"
	"sync"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/vtime"
)

// BlockSize is the page-cache block granularity.
const BlockSize = 1 << 20 // 1 MiB

// fdCacheCap bounds how many open file handles a rank keeps. PFF workloads
// touch millions of distinct files and miss constantly; CFF workloads touch
// a handful of containers and always hit after warm-up.
const fdCacheCap = 256

// PFS is one simulated shared filesystem instance.
type PFS struct {
	machine *cluster.Machine
	// totalRanks is the number of processes concurrently using the
	// filesystem, used for the deterministic contention model.
	totalRanks int

	mu    sync.RWMutex
	files map[string]int64 // path -> size
}

// New creates a filesystem shared by totalRanks processes of the given
// machine.
func New(machine *cluster.Machine, totalRanks int) *PFS {
	if totalRanks < 1 {
		totalRanks = 1
	}
	return &PFS{
		machine:    machine,
		totalRanks: totalRanks,
		files:      make(map[string]int64),
	}
}

// Create registers a virtual file of the given size. Creating an existing
// path overwrites its size.
func (p *PFS) Create(path string, size int64) {
	p.mu.Lock()
	p.files[path] = size
	p.mu.Unlock()
}

// FileSize returns a file's size.
func (p *PFS) FileSize(path string) (int64, bool) {
	p.mu.RLock()
	size, ok := p.files[path]
	p.mu.RUnlock()
	return size, ok
}

// NumFiles returns the number of registered files.
func (p *PFS) NumFiles() int {
	p.mu.RLock()
	n := len(p.files)
	p.mu.RUnlock()
	return n
}

// TotalBytes returns the sum of all file sizes.
func (p *PFS) TotalBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	var total int64
	for _, s := range p.files {
		total += s
	}
	return total
}

// readersPerFile estimates, deterministically, how many ranks concurrently
// read inside one file: everyone when there are few files (CFF), about one
// when files outnumber ranks (PFF).
func (p *PFS) readersPerFile() int {
	n := p.NumFiles()
	if n == 0 {
		return 1
	}
	r := (p.totalRanks + n - 1) / n
	if r < 1 {
		r = 1
	}
	return r
}

// Reader returns rank-private filesystem state: an fd cache and this rank's
// slice of the node page cache. clock and rng belong to the rank.
func (p *PFS) Reader(clock *vtime.Clock, rng *vtime.RNG) *Reader {
	perRank := p.machine.PageCacheBytes / int64(p.machine.GPUsPerNode)
	return &Reader{
		fs:    p,
		clock: clock,
		rng:   rng,
		fds:   newLRU(fdCacheCap),
		pages: newLRU(int(perRank / BlockSize)),
	}
}

// Reader is one rank's handle on the filesystem.
type Reader struct {
	fs    *PFS
	clock *vtime.Clock
	rng   *vtime.RNG
	fds   *lru
	pages *lru

	// Counters for the experiment reports.
	MetadataOps int64
	CacheHits   int64
	CacheMisses int64
	BytesRead   int64
}

// readAheadBlocks is how many subsequent blocks the modeled OS prefetches
// on a miss.
const readAheadBlocks = 4

// ReadAt models reading n bytes at offset off of path, charges the cost to
// the rank's clock, and returns the charged duration.
func (r *Reader) ReadAt(path string, off, n int64) (time.Duration, error) {
	size, ok := r.fs.FileSize(path)
	if !ok {
		return 0, fmt.Errorf("pfs: no such file %q", path)
	}
	if off < 0 || n < 0 || off+n > size {
		return 0, fmt.Errorf("pfs: read [%d,%d) out of bounds of %q (%d bytes)", off, off+n, path, size)
	}
	m := r.fs.machine
	var cost time.Duration

	// File open: metadata op unless the handle is cached.
	if !r.fds.get(fdKey(path)) {
		mult := m.FSContention(r.fs.totalRanks)
		cost += time.Duration(float64(m.FSMetadata.Sample(r.rng)) * mult)
		r.fds.put(fdKey(path))
		r.MetadataOps++
	}

	// Page cache check: the read is a cache hit only if every touched block
	// is resident.
	first := off / BlockSize
	last := (off + n - 1) / BlockSize
	if n == 0 {
		last = first
	}
	resident := true
	for b := first; b <= last; b++ {
		if !r.pages.get(pageKey(path, b)) {
			resident = false
			// get() refreshes recency only for hits; missing blocks are
			// inserted below after the modeled disk read.
		}
	}
	if resident {
		cost += m.CacheHit(n, r.rng)
		r.CacheHits++
	} else {
		mult := m.SharedFileContention(r.fs.readersPerFile())
		cost += time.Duration(float64(m.FSRead(n, r.fs.totalRanks, false, r.rng)) * mult)
		r.CacheMisses++
		// Insert the touched blocks plus read-ahead (prefetch is
		// asynchronous, so it is not charged).
		maxBlock := (size - 1) / BlockSize
		for b := first; b <= last+readAheadBlocks && b <= maxBlock; b++ {
			r.pages.put(pageKey(path, b))
		}
	}
	r.BytesRead += n
	r.clock.Advance(cost)
	return cost, nil
}

// ReadFile models reading the whole file sequentially (the preload path)
// and returns the charged duration. Sequential streaming pays one metadata
// op and the streaming bandwidth cost, without per-block seeks.
func (r *Reader) ReadFile(path string) (time.Duration, error) {
	size, ok := r.fs.FileSize(path)
	if !ok {
		return 0, fmt.Errorf("pfs: no such file %q", path)
	}
	m := r.fs.machine
	mult := m.FSContention(r.fs.totalRanks)
	var cost time.Duration
	if !r.fds.get(fdKey(path)) {
		cost += time.Duration(float64(m.FSMetadata.Sample(r.rng)) * mult)
		r.fds.put(fdKey(path))
		r.MetadataOps++
	}
	cost += time.Duration(float64(size) / m.FSBandwidth * float64(time.Second) * mult)
	maxBlock := (size - 1) / BlockSize
	for b := int64(0); b <= maxBlock; b++ {
		r.pages.put(pageKey(path, b))
	}
	r.BytesRead += size
	r.clock.Advance(cost)
	return cost, nil
}

func fdKey(path string) string            { return "fd:" + path }
func pageKey(path string, b int64) string { return fmt.Sprintf("pg:%s:%d", path, b) }

// lru is a fixed-capacity LRU set.
type lru struct {
	cap   int
	items map[string]*lruNode
	head  *lruNode // most recent
	tail  *lruNode // least recent
}

type lruNode struct {
	key        string
	prev, next *lruNode
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, items: make(map[string]*lruNode)}
}

// get reports whether key is present, refreshing its recency if so.
func (l *lru) get(key string) bool {
	n, ok := l.items[key]
	if !ok {
		return false
	}
	l.moveToFront(n)
	return true
}

// put inserts key (refreshing if present), evicting the least-recent entry
// when full.
func (l *lru) put(key string) {
	if n, ok := l.items[key]; ok {
		l.moveToFront(n)
		return
	}
	n := &lruNode{key: key}
	l.items[key] = n
	l.pushFront(n)
	if len(l.items) > l.cap {
		evict := l.tail
		l.unlink(evict)
		delete(l.items, evict.key)
	}
}

// Len returns the number of cached entries.
func (l *lru) Len() int { return len(l.items) }

func (l *lru) pushFront(n *lruNode) {
	n.next = l.head
	n.prev = nil
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *lru) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *lru) moveToFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}
