package pfs

import (
	"fmt"
	"testing"
	"time"

	"ddstore/internal/cluster"
	"ddstore/internal/vtime"
)

func newReader(t *testing.T, fs *PFS) (*Reader, *vtime.Clock) {
	t.Helper()
	clock := &vtime.Clock{}
	return fs.Reader(clock, vtime.NewRNG(7)), clock
}

func TestCreateAndStat(t *testing.T) {
	fs := New(cluster.Perlmutter(), 64)
	fs.Create("a", 100)
	fs.Create("b", 200)
	if n := fs.NumFiles(); n != 2 {
		t.Fatalf("NumFiles = %d", n)
	}
	if total := fs.TotalBytes(); total != 300 {
		t.Fatalf("TotalBytes = %d", total)
	}
	size, ok := fs.FileSize("a")
	if !ok || size != 100 {
		t.Fatalf("FileSize(a) = %d, %v", size, ok)
	}
	if _, ok := fs.FileSize("missing"); ok {
		t.Fatal("missing file found")
	}
	fs.Create("a", 150) // overwrite
	if size, _ := fs.FileSize("a"); size != 150 {
		t.Fatalf("overwritten size = %d", size)
	}
}

func TestReadAtBounds(t *testing.T) {
	fs := New(cluster.Perlmutter(), 4)
	fs.Create("f", 1000)
	r, _ := newReader(t, fs)
	if _, err := r.ReadAt("f", 0, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAt("f", 500, 501); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if _, err := r.ReadAt("f", -1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := r.ReadAt("missing", 0, 1); err == nil {
		t.Fatal("read of missing file accepted")
	}
}

func TestReadChargesClock(t *testing.T) {
	fs := New(cluster.Perlmutter(), 64)
	fs.Create("f", 1<<30)
	r, clock := newReader(t, fs)
	cost, err := r.ReadAt("f", 1<<25, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("read cost not positive")
	}
	if clock.Now() != cost {
		t.Fatalf("clock %v != cost %v", clock.Now(), cost)
	}
}

func TestFdCacheAmortizesMetadata(t *testing.T) {
	fs := New(cluster.Perlmutter(), 64)
	fs.Create("container", 1<<30)
	r, _ := newReader(t, fs)
	// Same file repeatedly: one metadata op.
	for i := 0; i < 50; i++ {
		if _, err := r.ReadAt("container", int64(i)*BlockSize*10, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if r.MetadataOps != 1 {
		t.Fatalf("MetadataOps = %d, want 1 (fd cached)", r.MetadataOps)
	}
}

func TestPFFPatternPaysMetadataPerFile(t *testing.T) {
	fs := New(cluster.Perlmutter(), 64)
	for i := 0; i < 1000; i++ {
		fs.Create(fmt.Sprintf("sample-%d", i), 8192)
	}
	r, _ := newReader(t, fs)
	for i := 0; i < 1000; i++ {
		if _, err := r.ReadAt(fmt.Sprintf("sample-%d", i), 0, 8192); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 distinct files through a 256-entry fd cache: every open misses.
	if r.MetadataOps != 1000 {
		t.Fatalf("MetadataOps = %d, want 1000", r.MetadataOps)
	}
}

func TestPageCacheHitsOnRepeatedReads(t *testing.T) {
	m := cluster.Perlmutter()
	fs := New(m, 4)
	fs.Create("small", 8*BlockSize) // fits easily in cache
	r, _ := newReader(t, fs)
	if _, err := r.ReadAt("small", 0, 4096); err != nil {
		t.Fatal(err)
	}
	if r.CacheMisses != 1 || r.CacheHits != 0 {
		t.Fatalf("first read: hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
	cost2, err := r.ReadAt("small", 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHits != 1 {
		t.Fatalf("second read not a cache hit (hits=%d misses=%d)", r.CacheHits, r.CacheMisses)
	}
	// A cache hit must be much cheaper than a typical disk read.
	if cost2 > m.FSSeek.Median() {
		t.Fatalf("cache hit cost %v not below seek median %v", cost2, m.FSSeek.Median())
	}
}

func TestReadAheadServesSequentialReads(t *testing.T) {
	fs := New(cluster.Perlmutter(), 4)
	fs.Create("seq", 64*BlockSize)
	r, _ := newReader(t, fs)
	// Sequential block-sized reads: miss, then readAheadBlocks hits, ...
	for b := int64(0); b < 10; b++ {
		if _, err := r.ReadAt("seq", b*BlockSize, BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if r.CacheMisses >= 10 {
		t.Fatalf("read-ahead ineffective: %d misses for 10 sequential reads", r.CacheMisses)
	}
	if r.CacheHits == 0 {
		t.Fatal("no read-ahead hits")
	}
}

func TestLargeFileRandomReadsMostlyMiss(t *testing.T) {
	m := cluster.Perlmutter()
	fs := New(m, 64)
	// File much larger than the per-rank cache slice (128 GB / 4 = 32 GB).
	fs.Create("huge", 200<<30)
	r, _ := newReader(t, fs)
	rng := vtime.NewRNG(3)
	const reads = 500
	for i := 0; i < reads; i++ {
		off := rng.Int63() % (200<<30 - 8192)
		if _, err := r.ReadAt("huge", off, 8192); err != nil {
			t.Fatal(err)
		}
	}
	if float64(r.CacheMisses) < 0.95*reads {
		t.Fatalf("random reads in a huge file should mostly miss: %d/%d misses", r.CacheMisses, reads)
	}
}

func TestReadFileWarmsCache(t *testing.T) {
	fs := New(cluster.Perlmutter(), 4)
	fs.Create("warm", 4*BlockSize)
	r, clock := newReader(t, fs)
	cost, err := r.ReadFile("warm")
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 || clock.Now() != cost {
		t.Fatalf("ReadFile cost %v, clock %v", cost, clock.Now())
	}
	before := r.CacheHits
	if _, err := r.ReadAt("warm", 2*BlockSize, 100); err != nil {
		t.Fatal(err)
	}
	if r.CacheHits != before+1 {
		t.Fatal("ReadFile did not warm the page cache")
	}
	if _, err := r.ReadFile("missing"); err == nil {
		t.Fatal("ReadFile of missing file accepted")
	}
}

func TestContentionIncreasesCost(t *testing.T) {
	// Median cost of the same access pattern must grow with rank count.
	med := func(ranks int) time.Duration {
		m := cluster.Perlmutter()
		fs := New(m, ranks)
		fs.Create("f", 100<<30)
		clock := &vtime.Clock{}
		r := fs.Reader(clock, vtime.NewRNG(1))
		var costs []time.Duration
		rng := vtime.NewRNG(2)
		for i := 0; i < 401; i++ {
			off := rng.Int63() % (100<<30 - 8192)
			c, err := r.ReadAt("f", off, 8192)
			if err != nil {
				t.Fatal(err)
			}
			costs = append(costs, c)
		}
		// insertion-sort median
		for i := 1; i < len(costs); i++ {
			for j := i; j > 0 && costs[j] < costs[j-1]; j-- {
				costs[j], costs[j-1] = costs[j-1], costs[j]
			}
		}
		return costs[len(costs)/2]
	}
	if m4, m1024 := med(4), med(1024); m1024 <= m4 {
		t.Fatalf("contention missing: median at 1024 ranks (%v) <= at 4 ranks (%v)", m1024, m4)
	}
}

func TestSharedFileCongestionVsManyFiles(t *testing.T) {
	// With the same total ranks, a single shared container (CFF) must show
	// more per-read congestion than per-sample files (PFF), holding the
	// metadata cost aside.
	m := cluster.Perlmutter()
	one := New(m, 512)
	one.Create("container", 1<<40)
	many := New(m, 512)
	for i := 0; i < 4096; i++ {
		many.Create(fmt.Sprintf("s-%d", i), 1<<20)
	}
	if one.readersPerFile() <= many.readersPerFile() {
		t.Fatalf("readersPerFile: container=%d, per-sample=%d", one.readersPerFile(), many.readersPerFile())
	}
}

func TestDeterministicCosts(t *testing.T) {
	runOnce := func() time.Duration {
		fs := New(cluster.Summit(), 48)
		fs.Create("f", 10<<30)
		clock := &vtime.Clock{}
		r := fs.Reader(clock, vtime.NewRNG(11))
		rng := vtime.NewRNG(12)
		for i := 0; i < 200; i++ {
			off := rng.Int63() % (10<<30 - 4096)
			if _, err := r.ReadAt("f", off, 4096); err != nil {
				t.Fatal(err)
			}
		}
		return clock.Now()
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("pfs not deterministic: %v vs %v", a, b)
	}
}

func TestLRU(t *testing.T) {
	l := newLRU(3)
	l.put("a")
	l.put("b")
	l.put("c")
	if !l.get("a") || !l.get("b") || !l.get("c") {
		t.Fatal("inserted keys missing")
	}
	l.get("a") // refresh a
	l.put("d") // evicts b (LRU after a,c refreshes... order: get c, get a, put d -> evict b)
	if l.get("b") {
		t.Fatal("b should have been evicted")
	}
	if !l.get("a") || !l.get("c") || !l.get("d") {
		t.Fatal("wrong eviction")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.put("d") // re-put refreshes, no growth
	if l.Len() != 3 {
		t.Fatalf("re-put grew LRU to %d", l.Len())
	}
}

func TestLRUSingleEntry(t *testing.T) {
	l := newLRU(1)
	l.put("x")
	l.put("y")
	if l.get("x") {
		t.Fatal("x not evicted")
	}
	if !l.get("y") {
		t.Fatal("y missing")
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestZeroLengthRead(t *testing.T) {
	fs := New(cluster.Laptop(), 2)
	fs.Create("f", 100)
	r, _ := newReader(t, fs)
	if _, err := r.ReadAt("f", 100, 0); err != nil {
		t.Fatalf("zero-length read at EOF: %v", err)
	}
}
