// Package pff implements the per-object file format baseline (the paper's
// "PFF", one Python-pickle file per sample): every graph sample is stored in
// its own file. This is the simplest storage scheme and the worst at scale —
// every sample read pays a filesystem metadata operation, and millions of
// tiny files hammer the parallel filesystem's metadata servers.
//
// Two implementations are provided:
//
//   - Store reads and writes real files on a local filesystem (used by unit
//     tests, the real-time benchmarks, and the ddstore-gen tool).
//   - Sim models the same access pattern on the simulated parallel
//     filesystem (internal/pfs) for the at-scale experiments: sample bytes
//     come from the deterministic generators while I/O costs are charged to
//     virtual clocks.
package pff

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/pfs"
	"ddstore/internal/vtime"
)

// Meta describes a PFF directory.
type Meta struct {
	Name        string `json:"name"`
	NumGraphs   int    `json:"num_graphs"`
	NodeFeatDim int    `json:"node_feat_dim"`
	EdgeFeatDim int    `json:"edge_feat_dim"`
	OutputDim   int    `json:"output_dim"`
}

const metaFile = "meta.json"

// samplePath returns the file path for one sample. Samples are spread over
// 256 subdirectories to avoid unusably large directories, like real
// per-object datasets do.
func samplePath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("%02x", id%256), fmt.Sprintf("%d.bin", id))
}

// Write materializes samples [lo, hi) of the dataset as one file per sample
// under dir, plus the metadata file. Pass lo=0, hi=ds.Len() for the whole
// dataset.
func Write(dir string, ds *datasets.Dataset, lo, hi int64) error {
	if lo < 0 || hi > int64(ds.Len()) || lo > hi {
		return fmt.Errorf("pff: bad range [%d,%d) for %d samples", lo, hi, ds.Len())
	}
	for sub := 0; sub < 256; sub++ {
		if err := os.MkdirAll(filepath.Join(dir, fmt.Sprintf("%02x", sub)), 0o755); err != nil {
			return err
		}
	}
	for id := lo; id < hi; id++ {
		g, err := ds.Sample(id)
		if err != nil {
			return err
		}
		if err := os.WriteFile(samplePath(dir, id), g.Encode(), 0o644); err != nil {
			return err
		}
	}
	meta := Meta{
		Name:        ds.Name(),
		NumGraphs:   ds.Len(),
		NodeFeatDim: ds.NodeFeatDim(),
		EdgeFeatDim: ds.EdgeFeatDim(),
		OutputDim:   ds.OutputDim(),
	}
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, metaFile), data, 0o644)
}

// Store reads a real PFF directory.
type Store struct {
	dir  string
	meta Meta
}

// Open opens a PFF directory previously produced by Write.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, fmt.Errorf("pff: %w", err)
	}
	var meta Meta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("pff: corrupt metadata: %w", err)
	}
	return &Store{dir: dir, meta: meta}, nil
}

// Name returns the dataset name.
func (s *Store) Name() string { return s.meta.Name }

// Len returns the number of samples.
func (s *Store) Len() int { return s.meta.NumGraphs }

// OutputDim returns the per-graph target width.
func (s *Store) OutputDim() int { return s.meta.OutputDim }

// NodeFeatDim returns the per-node feature width.
func (s *Store) NodeFeatDim() int { return s.meta.NodeFeatDim }

// EdgeFeatDim returns the per-edge feature width.
func (s *Store) EdgeFeatDim() int { return s.meta.EdgeFeatDim }

// ReadSample opens and decodes one sample file — the per-object access
// pattern: open, read, close, for every sample.
func (s *Store) ReadSample(id int64) (*graph.Graph, error) {
	if id < 0 || id >= int64(s.meta.NumGraphs) {
		return nil, fmt.Errorf("pff: sample %d out of range [0,%d)", id, s.meta.NumGraphs)
	}
	data, err := os.ReadFile(samplePath(s.dir, id))
	if err != nil {
		return nil, fmt.Errorf("pff: %w", err)
	}
	return graph.Decode(data)
}

// RegisterSim registers the dataset's per-sample virtual files on the
// simulated filesystem and returns the per-sample encoded sizes. Call once
// (typically from rank 0 or before the world starts).
func RegisterSim(fs *pfs.PFS, ds *datasets.Dataset) ([]int64, error) {
	sizes, err := SampleSizes(ds)
	if err != nil {
		return nil, err
	}
	RegisterSimSizes(fs, ds, sizes)
	return sizes, nil
}

// SampleSizes returns every sample's encoded size (generating each sample
// once). The result is reusable across filesystems and experiments.
func SampleSizes(ds *datasets.Dataset) ([]int64, error) {
	sizes := make([]int64, ds.Len())
	for id := int64(0); id < int64(ds.Len()); id++ {
		g, err := ds.Sample(id)
		if err != nil {
			return nil, err
		}
		sizes[id] = int64(g.EncodedSize())
	}
	return sizes, nil
}

// RegisterSimSizes registers the per-sample virtual files from precomputed
// sizes (see SampleSizes), skipping regeneration.
func RegisterSimSizes(fs *pfs.PFS, ds *datasets.Dataset, sizes []int64) {
	for id := int64(0); id < int64(ds.Len()); id++ {
		fs.Create(simPath(ds.Name(), id), sizes[id])
	}
}

func simPath(name string, id int64) string {
	return fmt.Sprintf("pff/%s/%02x/%d.bin", name, id%256, id)
}

// Sim models PFF reads for one rank on the simulated filesystem.
type Sim struct {
	ds     *datasets.Dataset
	reader *pfs.Reader
	sizes  []int64
}

// NewSim creates a per-rank simulated PFF reader. clock and rng are the
// rank's; sizes must come from RegisterSim on the same dataset.
func NewSim(fs *pfs.PFS, ds *datasets.Dataset, sizes []int64, clock *vtime.Clock, rng *vtime.RNG) *Sim {
	return &Sim{ds: ds, reader: fs.Reader(clock, rng), sizes: sizes}
}

// Name returns the dataset name.
func (s *Sim) Name() string { return s.ds.Name() }

// Len returns the number of samples.
func (s *Sim) Len() int { return s.ds.Len() }

// OutputDim returns the per-graph target width.
func (s *Sim) OutputDim() int { return s.ds.OutputDim() }

// NodeFeatDim returns the per-node feature width.
func (s *Sim) NodeFeatDim() int { return s.ds.NodeFeatDim() }

// EdgeFeatDim returns the per-edge feature width.
func (s *Sim) EdgeFeatDim() int { return s.ds.EdgeFeatDim() }

// ReadSample charges the modeled cost of the open+read of one sample file
// and returns the (deterministically generated) sample.
func (s *Sim) ReadSample(id int64) (*graph.Graph, error) {
	if id < 0 || id >= int64(s.ds.Len()) {
		return nil, fmt.Errorf("pff: sample %d out of range [0,%d)", id, s.ds.Len())
	}
	if _, err := s.reader.ReadAt(simPath(s.ds.Name(), id), 0, s.sizes[id]); err != nil {
		return nil, err
	}
	return s.ds.Sample(id)
}

// Reader exposes the underlying filesystem reader and its counters
// (metadata ops, cache hits/misses, bytes read).
func (s *Sim) Reader() *pfs.Reader { return s.reader }

// ReadSampleTimed is ReadSample plus the charged duration, for latency CDFs.
func (s *Sim) ReadSampleTimed(id int64) (*graph.Graph, time.Duration, error) {
	if id < 0 || id >= int64(s.ds.Len()) {
		return nil, 0, fmt.Errorf("pff: sample %d out of range [0,%d)", id, s.ds.Len())
	}
	cost, err := s.reader.ReadAt(simPath(s.ds.Name(), id), 0, s.sizes[id])
	if err != nil {
		return nil, 0, err
	}
	g, err := s.ds.Sample(id)
	return g, cost, err
}
