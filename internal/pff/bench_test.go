package pff

import (
	"testing"

	"ddstore/internal/datasets"
	"ddstore/internal/vtime"
)

// BenchmarkRealReadSample measures the true wall-clock cost of the PFF
// access pattern on the local filesystem: open + read + decode of one
// sample file per access. Compare with cff.BenchmarkRealReadSample and
// core's in-memory load benchmarks — the real-time ordering mirrors the
// paper's: per-object files pay the metadata cost on every access.
func BenchmarkRealReadSample(b *testing.B) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 512})
	dir := b.TempDir()
	if err := Write(dir, ds, 0, 512); err != nil {
		b.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	rng := vtime.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.ReadSample(int64(rng.Intn(512))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRealWrite measures dataset materialization throughput.
func BenchmarkRealWrite(b *testing.B) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 256})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Write(b.TempDir(), ds, 0, 256); err != nil {
			b.Fatal(err)
		}
	}
}
