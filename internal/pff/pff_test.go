package pff

import (
	"testing"

	"ddstore/internal/cluster"
	"ddstore/internal/datasets"
	"ddstore/internal/pfs"
	"ddstore/internal/vtime"
)

func TestWriteOpenReadRoundTrip(t *testing.T) {
	ds := datasets.Ising(datasets.Config{NumGraphs: 20})
	dir := t.TempDir()
	if err := Write(dir, ds, 0, 20); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != ds.Name() || st.Len() != 20 ||
		st.OutputDim() != ds.OutputDim() ||
		st.NodeFeatDim() != ds.NodeFeatDim() ||
		st.EdgeFeatDim() != ds.EdgeFeatDim() {
		t.Fatalf("metadata mismatch: %+v", st.meta)
	}
	for id := int64(0); id < 20; id++ {
		got, err := st.ReadSample(id)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ds.Sample(id)
		if got.ID != id || got.Y[0] != want.Y[0] || got.NumNodes != want.NumNodes {
			t.Fatalf("sample %d mismatch", id)
		}
	}
}

func TestReadSampleRangeCheck(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	dir := t.TempDir()
	if err := Write(dir, ds, 0, 5); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadSample(-1); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := st.ReadSample(5); err == nil {
		t.Fatal("out-of-range id accepted")
	}
}

func TestWriteBadRange(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 5})
	if err := Write(t.TempDir(), ds, 3, 2); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := Write(t.TempDir(), ds, 0, 100); err == nil {
		t.Fatal("out-of-range hi accepted")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open of empty dir succeeded")
	}
}

func TestPartialWrite(t *testing.T) {
	// Distributed generation: each writer materializes a slice.
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	dir := t.TempDir()
	if err := Write(dir, ds, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, ds, 5, 10); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 10; id++ {
		if _, err := st.ReadSample(id); err != nil {
			t.Fatalf("sample %d: %v", id, err)
		}
	}
}

func TestSimMatchesGenerator(t *testing.T) {
	ds := datasets.AISDExDiscrete(datasets.Config{NumGraphs: 30})
	fs := pfs.New(cluster.Perlmutter(), 4)
	sizes, err := RegisterSim(fs, ds)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumFiles() != 30 {
		t.Fatalf("registered %d files", fs.NumFiles())
	}
	clock := &vtime.Clock{}
	sim := NewSim(fs, ds, sizes, clock, vtime.NewRNG(1))
	g, err := sim.ReadSample(7)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ds.Sample(7)
	if g.ID != 7 || g.NumNodes != want.NumNodes {
		t.Fatal("sim sample differs from generator")
	}
	if clock.Now() <= 0 {
		t.Fatal("sim read charged no time")
	}
	if sim.Len() != 30 || sim.Name() != ds.Name() || sim.OutputDim() != 100 {
		t.Fatal("sim metadata wrong")
	}
}

func TestSimChargesMetadataPerSample(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 600})
	fs := pfs.New(cluster.Perlmutter(), 64)
	sizes, err := RegisterSim(fs, ds)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(fs, ds, sizes, &vtime.Clock{}, vtime.NewRNG(1))
	for id := int64(0); id < 600; id++ {
		if _, err := sim.ReadSample(id); err != nil {
			t.Fatal(err)
		}
	}
	// 600 distinct sample files >> 256 fd-cache slots: metadata every time.
	if sim.Reader().MetadataOps != 600 {
		t.Fatalf("MetadataOps = %d, want 600", sim.Reader().MetadataOps)
	}
}

func TestSimRangeCheck(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 3})
	fs := pfs.New(cluster.Laptop(), 2)
	sizes, _ := RegisterSim(fs, ds)
	sim := NewSim(fs, ds, sizes, &vtime.Clock{}, vtime.NewRNG(1))
	if _, err := sim.ReadSample(3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, _, err := sim.ReadSampleTimed(-1); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestSimTimedLatencyRegime(t *testing.T) {
	// PFF per-sample latency at 64 ranks should sit in the paper's
	// millisecond regime (Table 2: medians 2.2–2.8 ms).
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 500})
	fs := pfs.New(cluster.Perlmutter(), 64)
	sizes, _ := RegisterSim(fs, ds)
	sim := NewSim(fs, ds, sizes, &vtime.Clock{}, vtime.NewRNG(5))
	var costs []float64
	for id := int64(0); id < 500; id++ {
		_, cost, err := sim.ReadSampleTimed(id)
		if err != nil {
			t.Fatal(err)
		}
		costs = append(costs, cost.Seconds()*1000)
	}
	med := median(costs)
	if med < 1.5 || med > 6 {
		t.Fatalf("PFF sim median latency %.3f ms, want paper regime 1.5–6 ms", med)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
