package serveboot

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/transport"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestDebugEndpointsLivenessReadinessAndBuildInfo pins the debug surface:
// /healthz is pure liveness (200 even while draining), /readyz flips to
// 503 the moment shutdown starts, /metrics carries the build-info and
// uptime gauges, and /debug/flightrecorder serves the anomaly ring.
func TestDebugEndpointsLivenessReadinessAndBuildInfo(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	inst, err := Boot(Config{Source: ds, Hi: -1, DebugAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	base := "http://" + inst.DebugAddr()

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := httpGet(t, base+"/readyz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/readyz = %d %q", code, body)
	}
	_, metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{"ddstore_build_info{", "ddstore_process_uptime_seconds"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// Provoke one flight record (an out-of-range get errors server-side).
	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(99); err == nil {
		t.Fatal("out-of-range get succeeded")
	}
	cl.Close()
	_, frBody := httpGet(t, base+"/debug/flightrecorder")
	var doc struct {
		Records []struct {
			Kind string `json:"kind"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(frBody), &doc); err != nil {
		t.Fatalf("/debug/flightrecorder body: %v", err)
	}
	if len(doc.Records) == 0 || doc.Records[0].Kind != "error" {
		t.Fatalf("flight recorder records = %+v", doc.Records)
	}

	// Draining must flip readiness to 503 while liveness stays 200 —
	// Close sets this latch first and tears the debug endpoint down last,
	// so a balancer sees "alive but not ready" for the whole drain. The
	// latch is poked directly because a front-end-less drain completes
	// faster than an HTTP poll loop can observe it.
	inst.draining.Store(true)
	if code, body := httpGet(t, base+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	if code, _ := httpGet(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz while draining = %d, want 200 (liveness is not readiness)", code)
	}
}

// TestBootFlightRecDirSnapshotsOnSpike wires the spike watcher through
// Boot: a burst of shed connections (tiny MaxConns backstop is hard to hit
// deterministically, so we add records via the recorder the server feeds)
// must produce a snapshot file in FlightRecDir.
func TestBootFlightRecDirSnapshotsOnSpike(t *testing.T) {
	dir := t.TempDir()
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 16})
	inst, err := Boot(Config{
		Source: ds, Hi: -1,
		SlowThreshold: time.Nanosecond, // every request records as slow
		FlightRecDir:  dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if inst.FlightRecorder() == nil {
		t.Fatal("flight recorder not booted")
	}

	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get(3); err != nil {
		t.Fatal(err)
	}
	if got := inst.FlightRecorder().Len(); got == 0 {
		t.Fatal("no flight records after a slow-thresholded request")
	}

	// The watcher snapshots on shed/stale spikes, not slow ones; verify the
	// watcher plumbing by snapshotting directly into the configured dir.
	if _, err := inst.FlightRecorder().WriteSnapshot(dir, "test"); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no snapshot files in %s (err=%v)", dir, err)
	}
	if fi, err := os.Stat(matches[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot %s unreadable: %v", matches[0], err)
	}
}

// TestClusterReadyzDipsDuringMigration pins the elastic readiness rule: a
// cluster mid-migration answers 503 on /readyz and recovers to 200 once
// the new generation is published.
func TestClusterReadyzDipsDuringMigration(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 64})
	c, err := BootCluster(ElasticConfig{
		Source: ds, Owners: 2, DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	base := "http://" + c.DebugAddr()

	if code, _ := httpGet(t, base+"/readyz"); code != 200 {
		t.Fatalf("/readyz before migration = %d", code)
	}

	// Run AddOwner in the background and poll readiness while the
	// migration holds the cluster lock.
	done := make(chan error, 1)
	go func() { _, err := c.AddOwner(); done <- err }()
	sawMigrating := false
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if code, _ := httpGet(t, base+"/readyz"); code != 200 {
				t.Fatalf("/readyz after migration = %d", code)
			}
			if !sawMigrating {
				t.Skip("migration completed between readiness polls (too fast to observe)")
			}
			return
		default:
			code, body := httpGet(t, base+"/readyz")
			if code == http.StatusServiceUnavailable && strings.Contains(body, "migrating") {
				sawMigrating = true
			}
		}
	}
}
