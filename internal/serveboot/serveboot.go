// Package serveboot assembles a complete ddstore-serve instance — data
// source, preload-or-lazy chunk, metrics registry, debug endpoint, and
// optional chaos injection — from one Config. cmd/ddstore-serve is a thin
// flag-parsing shell over Boot; tests and the load-generator harness call
// Boot directly to spin a real TCP server on a loopback port inside the
// test process.
package serveboot

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/cff"
	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/frontend"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/obs/flightrec"
	"ddstore/internal/pff"
	"ddstore/internal/transport"
)

// SampleSource is the subset of dataset/store behaviour the server needs.
type SampleSource interface {
	Len() int
	ReadSample(id int64) (*graph.Graph, error)
}

// Config describes one serving process. Exactly one of CFFDir, PFFDir,
// Dataset, or Source selects the backing data.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0" (ephemeral
	// loopback port, resolved by Instance.Addr).
	Addr string

	// CFFDir / PFFDir serve from an on-disk dataset directory.
	CFFDir string
	PFFDir string
	// Dataset names a synthetic dataset: ising, homolumo, discrete, smooth.
	Dataset string
	// N and Bins size the synthetic dataset.
	N    int
	Bins int
	// Source serves a caller-provided dataset directly (tests).
	Source SampleSource

	// Lo and Hi bound the served id range [Lo, Hi); Hi < 0 means the
	// dataset end.
	Lo, Hi int64

	// WriteTimeout / IdleTimeout are the server's defensive limits.
	WriteTimeout time.Duration
	IdleTimeout  time.Duration

	// CacheBytes switches from eager preload to lazy on-demand serving
	// through a byte-budgeted hot-sample cache of this size.
	CacheBytes  int64
	CachePolicy string

	// DebugAddr enables the /metrics, /healthz, /debug/pprof endpoint on
	// this address ("" = disabled; "127.0.0.1:0" for an ephemeral port).
	DebugAddr string

	// Tenants enables the multi-tenant serving front end (admission
	// control, per-tenant budgets, priority queues, load shedding) with
	// the budgets it describes; see frontend.ParseTenants for the
	// syntax. Setting any of Tenants, MaxConns, QueueDepth, or
	// FrontendWorkers enables the front end.
	Tenants string
	// MaxConns caps concurrent admitted connections (0 = unlimited).
	MaxConns int
	// QueueDepth bounds each priority-class request queue (0 = the
	// front end's default).
	QueueDepth int
	// FrontendWorkers sizes the worker-permit pool draining the queues
	// (0 = GOMAXPROCS).
	FrontendWorkers int
	// DrainTimeout bounds the graceful drain Close performs when the
	// front end is enabled (default 5s).
	DrainTimeout time.Duration

	// Chaos, when non-nil, wraps the listener in a faultnet injector so
	// the instance misbehaves deterministically (resilience drills and
	// the fault-mix load tests).
	Chaos *faultnet.Scenario

	// FlightRecCap sizes the always-on flight recorder's bounded ring of
	// slow/errored/shed/stale request records (0 = default 256, negative
	// disables the recorder entirely).
	FlightRecCap int
	// SlowThreshold is the service time above which a successful request
	// is flight-recorded as slow (0 = default 250ms, negative disables
	// slow capture while keeping error/shed/stale records).
	SlowThreshold time.Duration
	// FlightRecDir, when set, arms the spike watcher: a shed- or
	// stale-rate spike snapshots the recorder's contents as a JSON file
	// in this directory, so the evidence survives the incident.
	FlightRecDir string
}

// Instance is a booted server and its attached subsystems.
type Instance struct {
	srv          *transport.Server
	fe           *frontend.Frontend
	dbg          *obs.DebugServer
	reg          *obs.Registry
	hot          *cache.Cache
	injector     *faultnet.Injector
	rec          *flightrec.Recorder
	stopWatch    func()
	draining     atomic.Bool
	lo, hi       int64
	drainTimeout time.Duration
	closers      []func() error
	closeOnce    sync.Once
	closeErr     error
}

// lazyChunk is a ChunkSource that encodes samples on demand through a
// byte-budgeted cache instead of preloading the whole range — the
// CacheBytes serving mode for ranges too large to hold encoded in
// memory. Concurrent requests for the same cold sample are coalesced into
// one backing read.
type lazyChunk struct {
	src    SampleSource
	lo, hi int64
	c      *cache.Cache
}

func (l *lazyChunk) LocalRange() (int64, int64) { return l.lo, l.hi }

func (l *lazyChunk) LocalSampleBytes(id int64) ([]byte, error) {
	if id < l.lo || id >= l.hi {
		return nil, fmt.Errorf("sample %d not in chunk [%d,%d)", id, l.lo, l.hi)
	}
	return l.c.GetOrFetch(id, func() ([]byte, error) {
		g, err := l.src.ReadSample(id)
		if err != nil {
			return nil, err
		}
		return g.Encode(), nil
	})
}

// openSource resolves the configured data backing.
func openSource(cfg Config) (SampleSource, []func() error, error) {
	switch {
	case cfg.Source != nil:
		return cfg.Source, nil, nil
	case cfg.CFFDir != "":
		st, err := cff.Open(cfg.CFFDir)
		if err != nil {
			return nil, nil, err
		}
		return st, []func() error{st.Close}, nil
	case cfg.PFFDir != "":
		src, err := pff.Open(cfg.PFFDir)
		if err != nil {
			return nil, nil, err
		}
		return src, nil, nil
	case cfg.Dataset != "":
		dcfg := datasets.Config{NumGraphs: cfg.N, SpectrumBins: cfg.Bins}
		switch cfg.Dataset {
		case "ising":
			return datasets.Ising(dcfg), nil, nil
		case "homolumo":
			return datasets.HomoLumo(dcfg), nil, nil
		case "discrete":
			return datasets.AISDExDiscrete(dcfg), nil, nil
		case "smooth":
			return datasets.AISDExSmooth(dcfg), nil, nil
		default:
			return nil, nil, fmt.Errorf("serveboot: unknown dataset %q", cfg.Dataset)
		}
	default:
		return nil, nil, fmt.Errorf("serveboot: one of CFFDir, PFFDir, Dataset, or Source is required")
	}
}

// Boot starts a server from cfg. The returned Instance owns every
// resource it started; Close releases them all.
func Boot(cfg Config) (*Instance, error) {
	src, closers, err := openSource(cfg)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, c := range closers {
			c()
		}
	}

	end := cfg.Hi
	if end < 0 {
		end = int64(src.Len())
	}
	if cfg.Lo < 0 || end > int64(src.Len()) || cfg.Lo >= end {
		closeAll()
		return nil, fmt.Errorf("serveboot: bad range [%d,%d) for %d samples", cfg.Lo, end, src.Len())
	}

	inst := &Instance{lo: cfg.Lo, hi: end, closers: closers}
	var chunk transport.ChunkSource
	if cfg.CacheBytes > 0 {
		// Lazy mode: no preload; samples are read and encoded on first
		// request and held under the cache's byte budget.
		pol, err := cache.ParsePolicy(cfg.CachePolicy)
		if err != nil {
			closeAll()
			return nil, err
		}
		inst.hot = cache.New(cache.Options{MaxBytes: cfg.CacheBytes, Policy: pol})
		chunk = &lazyChunk{src: src, lo: cfg.Lo, hi: end, c: inst.hot}
	} else {
		// Materialize the served chunk (encoded) so requests are memory
		// reads — the same preload step a DDStore rank performs.
		graphs := make([]*graph.Graph, 0, end-cfg.Lo)
		for id := cfg.Lo; id < end; id++ {
			g, err := src.ReadSample(id)
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("serveboot: preload %d: %w", id, err)
			}
			graphs = append(graphs, g)
		}
		chunk = transport.NewMemChunk(cfg.Lo, graphs)
	}

	opts := transport.ServerOptions{WriteTimeout: cfg.WriteTimeout, IdleTimeout: cfg.IdleTimeout}

	// The flight recorder runs whether or not the debug endpoint does —
	// always-on means the last window of anomalies is in memory the moment
	// anyone asks, not only after someone enabled debugging.
	if cfg.FlightRecCap >= 0 {
		inst.rec = flightrec.New(cfg.FlightRecCap)
		opts.FlightRecorder = inst.rec
		slow := cfg.SlowThreshold
		if slow == 0 {
			slow = 250 * time.Millisecond
		}
		if slow > 0 {
			opts.SlowThreshold = slow
		}
		if cfg.FlightRecDir != "" {
			inst.stopWatch = inst.rec.Watch(flightrec.WatchConfig{Dir: cfg.FlightRecDir})
		}
	}

	// The debug endpoint exports the server's request/latency metrics plus
	// cache and runtime gauges. Known resilience counters are pre-registered
	// at zero so a scrape shows the full schema before any traffic.
	if cfg.DebugAddr != "" {
		inst.reg = obs.NewRegistry()
		obs.NewCounterSink(inst.reg, obs.MetricEvents, "event",
			cache.CounterHits, cache.CounterMisses, cache.CounterCoalesced, cache.CounterEvictions,
			transport.CounterRoundTrips, transport.CounterRetries, transport.CounterReconnects,
			transport.CounterTimeouts, transport.CounterChecksumErrors,
			transport.CounterFailovers, transport.CounterGiveUps, transport.CounterOverloads)
		obs.FetchLatencyHistogram(inst.reg)
		obs.CollectGoRuntime(inst.reg)
		obs.CollectBuildInfo(inst.reg)
		obs.DrainingGauge(inst.reg)
		if inst.hot != nil {
			obs.CollectCache(inst.reg, inst.hot.Stats)
		}
		opts.Metrics = inst.reg
	}

	if cfg.Tenants != "" || cfg.MaxConns > 0 || cfg.QueueDepth > 0 || cfg.FrontendWorkers > 0 {
		tenants, err := frontend.ParseTenants(cfg.Tenants)
		if err != nil {
			closeAll()
			return nil, err
		}
		fe, err := frontend.New(frontend.Options{
			Tenants:    tenants,
			MaxConns:   cfg.MaxConns,
			QueueDepth: cfg.QueueDepth,
			Workers:    cfg.FrontendWorkers,
			Reg:        inst.reg,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		inst.fe = fe
		opts.Admission = fe
		if cfg.MaxConns > 0 {
			// Raw accept-loop backstop a little above the front end's cap:
			// ordinary refusals come from the front end with the overloaded
			// wire status, and the semaphore only stops a socket flood.
			opts.MaxConns = cfg.MaxConns + 64
		}
	}
	inst.drainTimeout = cfg.DrainTimeout
	if inst.drainTimeout == 0 {
		inst.drainTimeout = 5 * time.Second
	}

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("serveboot: %w", err)
	}
	if cfg.Chaos != nil {
		inst.injector = faultnet.New(*cfg.Chaos)
		ln = inst.injector.Listener(ln)
	}
	inst.srv = transport.ServeListener(ln, chunk, opts)

	if inst.reg != nil {
		mux := obs.NewDebugMux(inst.reg, nil)
		// Liveness stays /healthz inside the mux; readiness flips to 503
		// the moment Close begins draining, so balancers steer away while
		// in-flight work finishes.
		obs.AddReadyz(mux, func() (bool, string) {
			if inst.draining.Load() {
				return false, "draining"
			}
			return true, ""
		})
		if inst.rec != nil {
			mux.Handle("/debug/flightrecorder", inst.rec.Handler())
		}
		dbg, err := obs.StartDebugHandler(cfg.DebugAddr, mux)
		if err != nil {
			inst.srv.Close()
			closeAll()
			return nil, err
		}
		inst.dbg = dbg
	}
	return inst, nil
}

// Addr returns the resolved TCP listen address.
func (i *Instance) Addr() string { return i.srv.Addr() }

// Range returns the served id range [lo, hi).
func (i *Instance) Range() (lo, hi int64) { return i.lo, i.hi }

// DebugAddr returns the debug endpoint's address, or "" if disabled.
func (i *Instance) DebugAddr() string {
	if i.dbg == nil {
		return ""
	}
	return i.dbg.Addr()
}

// MetricsURL returns the full /metrics scrape URL, or "" if disabled.
func (i *Instance) MetricsURL() string {
	if i.dbg == nil {
		return ""
	}
	return "http://" + i.dbg.Addr() + "/metrics"
}

// Registry returns the metrics registry, or nil when DebugAddr is unset.
func (i *Instance) Registry() *obs.Registry { return i.reg }

// CacheStats reports the lazy-mode hot cache's stats; ok is false in
// preload mode, which has no cache.
func (i *Instance) CacheStats() (st cache.Stats, ok bool) {
	if i.hot == nil {
		return cache.Stats{}, false
	}
	return i.hot.Stats(), true
}

// CachePolicy returns the lazy-mode eviction policy name, or "".
func (i *Instance) CachePolicy() string {
	if i.hot == nil {
		return ""
	}
	return i.hot.Policy().String()
}

// ResetCache drops every cached entry so the next phase of a load run
// starts cold. It is a no-op in preload mode.
func (i *Instance) ResetCache() {
	if i.hot != nil {
		i.hot.Reset()
	}
}

// FaultStats reports the chaos injector's tally; ok is false when the
// instance was booted without Chaos.
func (i *Instance) FaultStats() (st faultnet.Stats, ok bool) {
	if i.injector == nil {
		return faultnet.Stats{}, false
	}
	return i.injector.Stats(), true
}

// FlightRecorder returns the instance's always-on flight recorder, or nil
// when Config.FlightRecCap was negative.
func (i *Instance) FlightRecorder() *flightrec.Recorder { return i.rec }

// FrontendStats snapshots the serving front end; ok is false when the
// instance was booted without one.
func (i *Instance) FrontendStats() (st frontend.Stats, ok bool) {
	if i.fe == nil {
		return frontend.Stats{}, false
	}
	return i.fe.Stats(), true
}

// Close shuts down the instance: with the front end enabled it first
// drains gracefully — new connections and requests are refused with the
// overloaded/draining wire status while queued and in-flight work
// finishes (bounded by DrainTimeout) — then the TCP server stops, and the
// debug endpoint closes LAST so /metrics stays scrapeable (with the
// draining gauge at 1) through the whole drain. Opened dataset files are
// released at the end. Idempotent.
func (i *Instance) Close() error {
	i.closeOnce.Do(func() {
		i.draining.Store(true) // /readyz flips to 503 before the drain starts
		if i.stopWatch != nil {
			i.stopWatch()
		}
		if i.reg != nil {
			obs.DrainingGauge(i.reg).Set(1)
		}
		if i.fe != nil {
			// The listener stays open during the drain so refusals reach
			// clients as a wire status instead of a connection reset.
			i.fe.Drain(i.drainTimeout)
			i.srv.Drain(time.Second)
		}
		err := i.srv.Close()
		if i.fe != nil {
			i.fe.Close()
		}
		if i.dbg != nil {
			i.dbg.Close()
		}
		for _, c := range i.closers {
			if cerr := c(); err == nil {
				err = cerr
			}
		}
		i.closeErr = err
	})
	return i.closeErr
}
