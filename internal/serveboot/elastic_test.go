package serveboot

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// fastNet is a retry policy tuned for loopback tests.
func fastNet() transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		DialTimeout: time.Second, ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second,
		Seed: 1,
	}
}

func bootTestCluster(t *testing.T, owners, n int, mut func(*ElasticConfig)) *Cluster {
	t.Helper()
	cfg := ElasticConfig{
		Source: datasets.HomoLumo(datasets.Config{NumGraphs: n}),
		Owners: owners,
		Net:    fastNet(),
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := BootCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func elasticGroup(t *testing.T, c *Cluster) *transport.Group {
	t.Helper()
	g, err := transport.NewElasticGroup(c.Addrs(), transport.GroupOptions{
		Client: transport.ClientOptions{Policy: fastNet()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

// loadAll loads every sample through the group and checks identity.
func loadAll(t *testing.T, g *transport.Group, n int64) {
	t.Helper()
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	gs, err := g.Load(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, gr := range gs {
		if gr == nil || gr.ID != int64(i) {
			t.Fatalf("sample %d came back wrong (%v)", i, gr)
		}
	}
}

func TestBootClusterServesAllSamples(t *testing.T) {
	c := bootTestCluster(t, 2, 200, nil)
	if got := c.OwnerCount(); got != 2 {
		t.Fatalf("owner count %d, want 2", got)
	}
	if got := c.Generation(); got != 1 {
		t.Fatalf("generation %d, want 1", got)
	}
	// The whole keyspace is resident exactly once across the owners
	// (width 1).
	total := 0
	for _, id := range c.OwnerIDs() {
		total += c.Owner(id).Resident()
	}
	if total != 200 {
		t.Fatalf("%d samples resident across owners, want 200", total)
	}
	g := elasticGroup(t, c)
	loadAll(t, g, 200)
}

func TestAddOwnerMovesMinimalDataAndRebalances(t *testing.T) {
	c := bootTestCluster(t, 2, 240, nil)
	id, err := c.AddOwner()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Generation(); got != 2 {
		t.Fatalf("generation after join = %d, want 2", got)
	}
	newOwner := c.Owner(id)
	if newOwner == nil || newOwner.Resident() == 0 {
		t.Fatalf("joined owner holds no data")
	}
	// Balance: every owner within one shard (240/16 shards = 15 samples
	// per shard) of the mean.
	for _, oid := range c.OwnerIDs() {
		r := c.Owner(oid).Resident()
		if r < 240/3-15 || r > 240/3+15 {
			t.Fatalf("owner %s holds %d samples after rebalance to 3 owners", oid, r)
		}
	}
	// The moved volume was metered.
	reg := c.Registry()
	snap := metricValue(t, reg, obs.MetricShardMapChunksMoved)
	if snap <= 0 {
		t.Fatalf("chunks-moved counter %v after a join", snap)
	}
	g := elasticGroup(t, c)
	loadAll(t, g, 240)
}

// metricValue reads one unlabeled series out of a registry snapshot via
// the Prometheus text exposition.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	return -1
}

func TestRemoveOwnerHandsOffBeforeShutdown(t *testing.T) {
	c := bootTestCluster(t, 3, 150, nil)
	victim := c.OwnerIDs()[2]
	if err := c.RemoveOwner(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.OwnerCount(); got != 2 {
		t.Fatalf("owner count %d after remove, want 2", got)
	}
	total := 0
	for _, id := range c.OwnerIDs() {
		total += c.Owner(id).Resident()
	}
	if total != 150 {
		t.Fatalf("%d samples resident after remove, want 150", total)
	}
	g := elasticGroup(t, c)
	loadAll(t, g, 150)

	if err := c.RemoveOwner("owner-99"); err == nil {
		t.Fatal("removing an unknown owner succeeded")
	}
}

func TestLiveReshardUnderLoadZeroHardErrors(t *testing.T) {
	// The acceptance drill: a 2-owner cluster rebalances to 3 while
	// clients hammer it. Every load must succeed — stale-generation
	// refreshes and failovers are fine, hard errors are not.
	const n = 300
	c := bootTestCluster(t, 2, n, nil)
	g := elasticGroup(t, c)
	loadAll(t, g, n) // warm bootstrap

	var hardErrs atomic.Int64
	var loads atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids := make([]int64, 8)
				for i := range ids {
					ids[i] = rng.Int63n(n)
				}
				gs, err := g.Load(ids)
				if err != nil {
					hardErrs.Add(1)
					continue
				}
				for i := range gs {
					if gs[i] == nil || gs[i].ID != ids[i] {
						hardErrs.Add(1)
					}
				}
				loads.Add(1)
			}
		}(w)
	}
	// Let traffic flow, rebalance live, keep traffic flowing after.
	time.Sleep(50 * time.Millisecond)
	if err := c.Reshard(3); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if he := hardErrs.Load(); he != 0 {
		t.Fatalf("%d hard errors during live reshard (loads=%d)", he, loads.Load())
	}
	if loads.Load() == 0 {
		t.Fatal("no loads completed")
	}
	if got := c.Generation(); got != 2 {
		t.Fatalf("generation after reshard = %d, want 2", got)
	}
	if got := c.OwnerCount(); got != 3 {
		t.Fatalf("owner count %d, want 3", got)
	}
	// The group refreshed to the published generation.
	loadAll(t, g, n)
	if got := g.Generation(); got != 2 {
		t.Fatalf("client generation %d after reshard traffic, want 2", got)
	}
}

func TestCrashOwnerHealsFromDurableSource(t *testing.T) {
	// Width-1 cluster: a crash orphans the dead owner's shards (no
	// surviving replica), so healing must re-read them from the backing
	// source. Nothing is lost and clients keep loading.
	c := bootTestCluster(t, 3, 150, nil)
	g := elasticGroup(t, c)
	loadAll(t, g, 150)

	victim := c.OwnerIDs()[1]
	if err := c.CrashOwner(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.OwnerCount(); got != 2 {
		t.Fatalf("owner count %d after crash, want 2", got)
	}
	total := 0
	for _, id := range c.OwnerIDs() {
		total += c.Owner(id).Resident()
	}
	if total != 150 {
		t.Fatalf("%d samples resident after crash heal, want 150", total)
	}
	loadAll(t, g, 150)
	if got := g.Generation(); got != 2 {
		t.Fatalf("client generation %d after crash heal, want 2", got)
	}
}

func TestCrashWithReplicasPromotesWithoutSourceReads(t *testing.T) {
	// Width-2: every shard has a surviving replica, so a crash heals by
	// promotion plus replica top-up pulls — the durable source is never
	// needed for the promoted primaries.
	src := &countingSource{SampleSource: datasets.HomoLumo(datasets.Config{NumGraphs: 120})}
	c := bootTestCluster(t, 3, 120, func(cfg *ElasticConfig) {
		cfg.Source = src
		cfg.Width = 2
	})
	g := elasticGroup(t, c)
	loadAll(t, g, 120)
	preloadReads := src.reads.Load()

	victim := c.OwnerIDs()[0]
	if err := c.CrashOwner(victim); err != nil {
		t.Fatal(err)
	}
	loadAll(t, g, 120)
	// Top-up pulls come from surviving replicas over the wire; the
	// source sees no new reads.
	if got := src.reads.Load(); got != preloadReads {
		t.Fatalf("crash heal read %d samples from the durable source, want 0", got-preloadReads)
	}
}

// countingSource counts ReadSample calls through to the wrapped source.
type countingSource struct {
	SampleSource
	reads atomic.Int64
}

func (s *countingSource) ReadSample(id int64) (*graph.Graph, error) {
	s.reads.Add(1)
	return s.SampleSource.ReadSample(id)
}

func TestMidMigrationCrashDegradesToRetryAndSource(t *testing.T) {
	// Chaos drill: every owner listener resets connections now and then,
	// so migration pulls fail mid-stream and must retry or fall back to
	// the durable source — the transition still converges and clients
	// still see every sample.
	c := bootTestCluster(t, 2, 200, func(cfg *ElasticConfig) {
		cfg.Chaos = &faultnet.Scenario{Seed: 7, ResetProb: 0.02}
	})
	if _, err := c.AddOwner(); err != nil {
		t.Fatal(err)
	}
	if got := c.Generation(); got != 2 {
		t.Fatalf("generation after chaotic join = %d, want 2", got)
	}
	total := 0
	for _, id := range c.OwnerIDs() {
		total += c.Owner(id).Resident()
	}
	if total != 200 {
		t.Fatalf("%d samples resident after chaotic migration, want 200", total)
	}
	// Resets are retry-recoverable, not hard errors: a patient client (a
	// deeper retry budget, and small batches so each response risks few
	// reset draws) still sees every sample through the chaotic fabric.
	pol := fastNet()
	pol.MaxAttempts = 8
	g, err := transport.NewElasticGroup(c.Addrs(), transport.GroupOptions{
		Client:   transport.ClientOptions{Policy: pol},
		MaxBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	loadAll(t, g, 200)
}

func TestAdminReshardEndpointAndMetrics(t *testing.T) {
	c := bootTestCluster(t, 2, 100, func(cfg *ElasticConfig) {
		cfg.DebugAddr = "127.0.0.1:0"
	})
	if c.DebugAddr() == "" {
		t.Fatal("no debug endpoint")
	}
	resp, err := http.Get("http://" + c.DebugAddr() + "/admin/reshard?owners=3")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reshard endpoint: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Generation uint64   `json:"generation"`
		Owners     []string `json:"owners"`
		Addrs      []string `json:"addrs"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 || len(out.Owners) != 3 || len(out.Addrs) != 3 {
		t.Fatalf("reshard response %+v", out)
	}

	// /metrics exposes the generation gauge at the published value.
	mresp, err := http.Get(c.MetricsURL())
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), obs.MetricShardMapGeneration+" 2") {
		t.Fatalf("/metrics missing %s 2:\n%s", obs.MetricShardMapGeneration, firstLines(string(mbody), 40))
	}

	// Bad requests are rejected.
	bad, err := http.Get("http://" + c.DebugAddr() + "/admin/reshard?owners=0")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("owners=0 answered %d, want 400", bad.StatusCode)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

func TestClusterGenerationIsMonotonic(t *testing.T) {
	c := bootTestCluster(t, 2, 120, nil)
	want := uint64(1)
	for _, target := range []int{3, 4, 2, 3} {
		if err := c.Reshard(target); err != nil {
			t.Fatalf("reshard to %d: %v", target, err)
		}
		if c.Generation() <= want {
			t.Fatalf("generation %d did not advance past %d on reshard to %d", c.Generation(), want, target)
		}
		want = c.Generation()
	}
	g := elasticGroup(t, c)
	loadAll(t, g, 120)
}
