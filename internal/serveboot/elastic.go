// Elastic membership: a Cluster is a set of in-process ddstore-serve
// owners routing every request through a versioned shard map
// (internal/shardmap). Owners can join, leave, or crash while clients keep
// loading: a membership transition plans the minimal chunk moves, the
// gaining owners pull the moved chunks over the existing batched fetch
// path while the old owners keep serving, and the next generation is
// published gainers-first so every sample stays addressable throughout —
// a client that lands on the wrong owner gets a stale-generation answer
// carrying the new map and retries, never a hard error.
package serveboot

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ddstore/internal/faultnet"
	"ddstore/internal/obs"
	"ddstore/internal/obs/flightrec"
	"ddstore/internal/shardmap"
	"ddstore/internal/transport"
)

// migrateBatch is how many samples one migration pull requests at a time
// — the same batched GetBatchRaw framing clients use.
const migrateBatch = 256

// ElasticConfig describes an elastic owner cluster. Exactly one of
// CFFDir, PFFDir, Dataset, or Source selects the durable backing data
// (the source of last resort when no surviving owner holds a moved
// chunk).
type ElasticConfig struct {
	CFFDir  string
	PFFDir  string
	Dataset string
	N       int
	Bins    int
	Source  SampleSource

	// Owners is the initial owner count (default 2).
	Owners int
	// Addrs, when set, are explicit listen addresses for the initial
	// owners (len must be >= Owners); owners beyond the list — and every
	// owner added later — bind an ephemeral loopback port.
	Addrs []string
	// Width is the per-shard replica width the planner maintains
	// (default 1).
	Width int
	// ShardsPerMember is the shard granularity of the initial map
	// (default 8); finer shards mean finer-grained rebalances.
	ShardsPerMember int

	// WriteTimeout / IdleTimeout are each owner's defensive limits.
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Net is the retry/deadline policy of the migration pull clients.
	Net transport.RetryPolicy

	// DebugAddr enables the cluster debug endpoint — /metrics, /healthz,
	// pprof, plus /admin/reshard?owners=N — on this address.
	DebugAddr string

	// Chaos, when non-nil, wraps every owner's listener in a faultnet
	// injector, so both client traffic and migration pulls cross a faulty
	// fabric (resilience drills).
	Chaos *faultnet.Scenario

	// FlightRecCap sizes the cluster-wide flight recorder shared by every
	// owner (0 = default 256, negative disables it).
	FlightRecCap int
	// SlowThreshold flight-records successful requests slower than this
	// (0 = default 250ms, negative disables slow capture).
	SlowThreshold time.Duration
}

// elasticChunk is a ChunkSource over a dynamic sample set: LocalRange
// advertises the full keyspace (ownership is the shard map's job, checked
// by the server before the chunk is touched), and the resident set grows
// and shrinks as migrations pull chunks in and cutovers drop them.
type elasticChunk struct {
	lo, hi  int64
	mu      sync.RWMutex
	samples map[int64][]byte
}

func newElasticChunk(lo, hi int64) *elasticChunk {
	return &elasticChunk{lo: lo, hi: hi, samples: make(map[int64][]byte)}
}

func (c *elasticChunk) LocalRange() (int64, int64) { return c.lo, c.hi }

func (c *elasticChunk) LocalSampleBytes(id int64) ([]byte, error) {
	c.mu.RLock()
	b, ok := c.samples[id]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serveboot: sample %d not resident on this owner", id)
	}
	return b, nil
}

func (c *elasticChunk) put(id int64, raw []byte) {
	c.mu.Lock()
	c.samples[id] = raw
	c.mu.Unlock()
}

// retainOwned drops every resident sample the member no longer owns under
// m — the post-cutover memory release on the losing side of a migration.
func (c *elasticChunk) retainOwned(m *shardmap.Map, mi int) {
	c.mu.Lock()
	for id := range c.samples {
		if !m.OwnedBy(id, mi) {
			delete(c.samples, id)
		}
	}
	c.mu.Unlock()
}

func (c *elasticChunk) resident() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.samples)
}

// mapView adapts one owner's shardmap.Store to the transport server's
// ShardMapSource: ownership questions resolve against the owner's live
// generation, keyed by its stable member ID.
type mapView struct {
	st *shardmap.Store
	id string
}

func (v mapView) Generation() uint64 { return v.st.Generation() }

func (v mapView) Owns(id int64) bool {
	m := v.st.Current()
	mi := m.MemberIndex(v.id)
	return mi >= 0 && m.OwnedBy(id, mi)
}

func (v mapView) Encoded() ([]byte, error) { return v.st.Encoded() }

// Owner is one serving member of an elastic cluster.
type Owner struct {
	ID      string
	addr    string
	chunk   *elasticChunk
	maps    *shardmap.Store
	srv     *transport.Server
	crashed atomic.Bool
}

// Addr returns the owner's data-plane listen address.
func (o *Owner) Addr() string { return o.addr }

// Resident returns how many samples the owner currently holds.
func (o *Owner) Resident() int { return o.chunk.resident() }

// Generation returns the owner's applied shard map generation.
func (o *Owner) Generation() uint64 { return o.maps.Generation() }

// Cluster is a live elastic owner set plus its control plane: membership
// transitions, chunk migration, and the shared metrics/admin endpoint.
// All membership operations serialize on the cluster lock; serving and
// migration overlap freely.
type Cluster struct {
	src    SampleSource
	total  int64
	width  int
	net    transport.RetryPolicy
	wt, it time.Duration
	chaos  *faultnet.Scenario
	reg    *obs.Registry
	dbg    *obs.DebugServer
	rec    *flightrec.Recorder
	slow   time.Duration
	// migrating counts in-flight membership transitions and closing
	// latches on shutdown; /readyz reads both without touching the
	// cluster lock (which a migration holds for its whole duration).
	migrating atomic.Int32
	closing   atomic.Bool
	gen       *obs.Gauge
	moved     *obs.Counter
	migB      *obs.Histogram
	migS      *obs.Histogram
	closers   []func() error

	mu     sync.Mutex
	cur    *shardmap.Map
	owners map[string]*Owner
	order  []string // owner IDs in join order (reshard removes newest first)
	pulls  map[string]*transport.Client
	nextID int
	closed bool
}

// BootCluster starts an elastic cluster: the initial owners listen, the
// generation-1 map stripes the keyspace uniformly over them, and each
// owner preloads the shards it owns from the durable source.
func BootCluster(cfg ElasticConfig) (*Cluster, error) {
	src, closers, err := openSource(Config{
		CFFDir: cfg.CFFDir, PFFDir: cfg.PFFDir,
		Dataset: cfg.Dataset, N: cfg.N, Bins: cfg.Bins, Source: cfg.Source,
	})
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, cl := range closers {
			cl()
		}
	}
	total := int64(src.Len())
	if total == 0 {
		closeAll()
		return nil, fmt.Errorf("serveboot: elastic source is empty")
	}
	n := cfg.Owners
	if n <= 0 {
		n = 2
	}
	reg := obs.NewRegistry()
	c := &Cluster{
		src: src, total: total, width: cfg.Width, net: cfg.Net,
		wt: cfg.WriteTimeout, it: cfg.IdleTimeout, chaos: cfg.Chaos,
		reg:     reg,
		gen:     obs.ShardMapGenerationGauge(reg),
		moved:   obs.ShardMapChunksMovedCounter(reg),
		migB:    obs.MigrationBytesHistogram(reg),
		migS:    obs.MigrationSecondsHistogram(reg),
		closers: closers,
		owners:  make(map[string]*Owner),
		pulls:   make(map[string]*transport.Client),
	}
	if cfg.FlightRecCap >= 0 {
		c.rec = flightrec.New(cfg.FlightRecCap)
		c.slow = cfg.SlowThreshold
		if c.slow == 0 {
			c.slow = 250 * time.Millisecond
		}
		if c.slow < 0 {
			c.slow = 0
		}
	}
	obs.CollectBuildInfo(reg)

	// Listeners first: member addresses go into the map, so they must be
	// resolved before generation 1 exists.
	lns := make([]net.Listener, n)
	members := make([]shardmap.Member, n)
	for i := 0; i < n; i++ {
		addr := "127.0.0.1:0"
		if i < len(cfg.Addrs) && cfg.Addrs[i] != "" {
			addr = cfg.Addrs[i]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			closeAll()
			return nil, fmt.Errorf("serveboot: elastic listen %s: %w", addr, err)
		}
		lns[i] = ln
		id := fmt.Sprintf("owner-%d", c.nextID)
		c.nextID++
		members[i] = shardmap.Member{ID: id, Addr: ln.Addr().String()}
	}
	m, err := shardmap.Uniform(0, total, members, shardmap.UniformOptions{
		ShardsPerMember: cfg.ShardsPerMember, Width: cfg.Width,
	})
	if err != nil {
		for _, l := range lns {
			l.Close()
		}
		closeAll()
		return nil, err
	}
	c.cur = m
	for i := range members {
		o, err := c.startOwner(lns[i], members[i].ID, m)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.owners[members[i].ID] = o
		c.order = append(c.order, members[i].ID)
	}
	c.gen.Set(float64(m.Gen))

	if cfg.DebugAddr != "" {
		mux := obs.NewDebugMux(reg, nil)
		mux.HandleFunc("/admin/reshard", c.handleReshard)
		// Mid-migration the cluster still answers every request (that is
		// the point of gainers-first publishing), but readiness dips so
		// orchestrators hold rolling operations until the cutover lands.
		obs.AddReadyz(mux, func() (bool, string) {
			switch {
			case c.closing.Load():
				return false, "draining"
			case c.migrating.Load() > 0:
				return false, "migrating"
			}
			return true, ""
		})
		if c.rec != nil {
			mux.Handle("/debug/flightrecorder", c.rec.Handler())
		}
		dbg, err := obs.StartDebugHandler(cfg.DebugAddr, mux)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dbg = dbg
	}
	return c, nil
}

// startOwner boots one owner: its own shard map store (seeded with the
// given generation), its dynamic chunk preloaded with the shards it owns,
// and a TCP server whose every request is ownership-checked against the
// owner's live generation.
func (c *Cluster) startOwner(ln net.Listener, id string, initial *shardmap.Map) (*Owner, error) {
	st, err := shardmap.NewStore(initial, 0)
	if err != nil {
		ln.Close()
		return nil, err
	}
	// Metrics bridge: shardmap stays stdlib-only; every applied
	// generation lands on the shared gauge here.
	st.OnApply = func(m *shardmap.Map, _ int) { c.gen.Set(float64(m.Gen)) }
	chunk := newElasticChunk(0, c.total)
	if mi := initial.MemberIndex(id); mi >= 0 {
		for _, sh := range initial.Shards {
			owned := false
			for _, o := range sh.Owners {
				if o == mi {
					owned = true
					break
				}
			}
			if !owned {
				continue
			}
			for sid := sh.Lo; sid < sh.Hi; sid++ {
				g, err := c.src.ReadSample(sid)
				if err != nil {
					ln.Close()
					return nil, fmt.Errorf("serveboot: preload sample %d for %s: %w", sid, id, err)
				}
				chunk.put(sid, g.Encode())
			}
		}
	}
	if c.chaos != nil {
		ln = faultnet.New(*c.chaos).Listener(ln)
	}
	o := &Owner{ID: id, addr: ln.Addr().String(), chunk: chunk, maps: st}
	o.srv = transport.ServeListener(ln, chunk, transport.ServerOptions{
		WriteTimeout:   c.wt,
		IdleTimeout:    c.it,
		Metrics:        c.reg,
		ShardMap:       mapView{st: st, id: id},
		FlightRecorder: c.rec, // shared cluster-wide; stale records carry the op
		SlowThreshold:  c.slow,
	})
	return o, nil
}

// AddOwner joins a new owner: it boots empty under the current
// generation, the planner moves the minimum shards onto it, migration
// pulls those chunks while the old owners keep serving, and the next
// generation cuts over. Returns the new owner's ID.
func (c *Cluster) AddOwner() (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", fmt.Errorf("serveboot: cluster is closed")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("serveboot: elastic listen: %w", err)
	}
	id := fmt.Sprintf("owner-%d", c.nextID)
	c.nextID++
	members := append(append([]shardmap.Member(nil), c.cur.Members...),
		shardmap.Member{ID: id, Addr: ln.Addr().String()})
	next, moves, err := shardmap.Planner{Width: c.width}.Next(c.cur, members)
	if err != nil {
		ln.Close()
		return "", err
	}
	o, err := c.startOwner(ln, id, c.cur) // owns nothing yet; migration fills it
	if err != nil {
		return "", err
	}
	c.owners[id] = o
	c.order = append(c.order, id)
	if err := c.migrateAndPublish(next, moves); err != nil {
		return "", err
	}
	return id, nil
}

// RemoveOwner drains an owner out of the cluster gracefully: its shards
// migrate to the survivors (pulled from it while it still serves), the
// next generation excludes it, and only then does it shut down.
func (c *Cluster) RemoveOwner(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(id)
}

func (c *Cluster) removeLocked(id string) error {
	if c.closed {
		return fmt.Errorf("serveboot: cluster is closed")
	}
	o := c.owners[id]
	if o == nil {
		return fmt.Errorf("serveboot: unknown owner %q", id)
	}
	if len(c.owners) == 1 {
		return fmt.Errorf("serveboot: cannot remove the last owner")
	}
	members := make([]shardmap.Member, 0, len(c.cur.Members)-1)
	for _, m := range c.cur.Members {
		if m.ID != id {
			members = append(members, m)
		}
	}
	next, moves, err := shardmap.Planner{Width: c.width}.Next(c.cur, members)
	if err != nil {
		return err
	}
	if err := c.migrateAndPublish(next, moves); err != nil {
		return err
	}
	c.dropOwner(id)
	o.srv.Close()
	return nil
}

// CrashOwner kills an owner abruptly (no drain, no handoff) and then
// heals the cluster: the planner promotes surviving replicas where it
// can, and orphaned shards are re-read from the durable source. Clients
// that were talking to the dead owner fail over / refresh and retry.
func (c *Cluster) CrashOwner(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	o := c.owners[id]
	if o == nil {
		return fmt.Errorf("serveboot: unknown owner %q", id)
	}
	if len(c.owners) == 1 {
		return fmt.Errorf("serveboot: cannot crash the last owner")
	}
	o.crashed.Store(true)
	o.srv.Close() // abrupt: in-flight connections die mid-request
	members := make([]shardmap.Member, 0, len(c.cur.Members)-1)
	for _, m := range c.cur.Members {
		if m.ID != id {
			members = append(members, m)
		}
	}
	next, moves, err := shardmap.Planner{Width: c.width}.Next(c.cur, members)
	if err != nil {
		return err
	}
	if err := c.migrateAndPublish(next, moves); err != nil {
		return err
	}
	c.dropOwner(id)
	return nil
}

func (c *Cluster) dropOwner(id string) {
	delete(c.owners, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	if cl := c.pulls[id]; cl != nil {
		cl.Close()
		delete(c.pulls, id)
	}
}

// Reshard grows or shrinks the cluster to n owners, one membership
// transition at a time (shrinking removes the newest owners first).
func (c *Cluster) Reshard(n int) error {
	if n < 1 {
		return fmt.Errorf("serveboot: cannot reshard to %d owners", n)
	}
	for c.OwnerCount() < n {
		if _, err := c.AddOwner(); err != nil {
			return err
		}
	}
	for c.OwnerCount() > n {
		c.mu.Lock()
		id := c.order[len(c.order)-1]
		err := c.removeLocked(id)
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// migrateAndPublish executes one planned transition under the cluster
// lock: pull every moved chunk to its gaining owner (old owners still
// serving), publish the next generation to the gainers first and the
// rest after, then release the bytes the losers no longer own.
func (c *Cluster) migrateAndPublish(next *shardmap.Map, moves []shardmap.Move) error {
	c.migrating.Add(1)
	defer c.migrating.Add(-1)
	start := time.Now()
	var bytes int64
	gainers := make(map[string]bool)
	for _, mv := range moves {
		gainer := c.owners[mv.ToID]
		if gainer == nil {
			return fmt.Errorf("serveboot: move targets unknown owner %q", mv.ToID)
		}
		n, err := c.pullMove(mv, gainer)
		bytes += n
		if err != nil {
			return err
		}
		gainers[mv.ToID] = true
	}
	// Gainers first: once an owner answers for a moved chunk it must hold
	// the bytes. Losers keep serving under the old generation until their
	// own apply, so the chunk never goes dark.
	for id := range gainers {
		if _, err := c.owners[id].maps.ApplyIfNewer(next); err != nil {
			return err
		}
	}
	for id, o := range c.owners {
		if gainers[id] {
			continue
		}
		if _, err := o.maps.ApplyIfNewer(next); err != nil {
			return err
		}
	}
	c.cur = next
	for id, o := range c.owners {
		if mi := next.MemberIndex(id); mi >= 0 {
			o.chunk.retainOwned(next, mi)
		}
	}
	c.moved.Add(int64(len(moves)))
	c.migB.Observe(float64(bytes))
	c.migS.Observe(time.Since(start).Seconds())
	return nil
}

// pullMove copies one moved shard onto its gaining owner, preferring the
// planned source owner, then any other live owner of the shard under the
// current generation, and finally the durable backing source (the only
// choice when every holder crashed, From = -1).
func (c *Cluster) pullMove(mv shardmap.Move, gainer *Owner) (int64, error) {
	var addrs []string
	tried := map[string]bool{gainer.ID: true}
	consider := func(id string) {
		if id == "" || tried[id] {
			return
		}
		tried[id] = true
		if o := c.owners[id]; o != nil && !o.crashed.Load() {
			addrs = append(addrs, o.addr)
		}
	}
	consider(mv.FromID)
	if sh, err := c.cur.ShardOf(mv.Lo); err == nil {
		for _, oi := range sh.Owners {
			consider(c.cur.Members[oi].ID)
		}
	}
	var total int64
	for lo := mv.Lo; lo < mv.Hi; lo += migrateBatch {
		hi := lo + migrateBatch
		if hi > mv.Hi {
			hi = mv.Hi
		}
		ids := make([]int64, 0, hi-lo)
		for id := lo; id < hi; id++ {
			ids = append(ids, id)
		}
		raws, err := c.pullBatch(addrs, ids)
		if err != nil {
			// Degrade to the durable source: a crash mid-migration means
			// re-reading, never losing, the chunk.
			if raws, err = c.readBatchFromSource(ids); err != nil {
				return total, fmt.Errorf("serveboot: migrate shard %d [%d,%d) to %s: %w",
					mv.Shard, mv.Lo, mv.Hi, gainer.ID, err)
			}
		}
		for i, id := range ids {
			gainer.chunk.put(id, raws[i])
			total += int64(len(raws[i]))
		}
	}
	return total, nil
}

// pullBatch fetches one id batch over the wire, trying each candidate
// address in order.
func (c *Cluster) pullBatch(addrs []string, ids []int64) ([][]byte, error) {
	var err error
	for _, addr := range addrs {
		cl := c.pulls[addr]
		if cl == nil {
			if cl, err = transport.DialOptions(addr, transport.ClientOptions{Policy: c.net}); err != nil {
				continue
			}
			c.pulls[addr] = cl
		}
		var raws [][]byte
		if raws, err = cl.GetBatchRaw(ids); err == nil {
			return raws, nil
		}
	}
	if err == nil {
		err = fmt.Errorf("no live owner holds the chunk")
	}
	return nil, err
}

func (c *Cluster) readBatchFromSource(ids []int64) ([][]byte, error) {
	raws := make([][]byte, len(ids))
	for i, id := range ids {
		g, err := c.src.ReadSample(id)
		if err != nil {
			return nil, fmt.Errorf("durable source read %d: %w", id, err)
		}
		raws[i] = g.Encode()
	}
	return raws, nil
}

// handleReshard is the /admin/reshard?owners=N endpoint: grow or shrink
// the cluster, then report the resulting membership.
func (c *Cluster) handleReshard(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.URL.Query().Get("owners"))
	if err != nil || n < 1 {
		http.Error(w, "reshard needs ?owners=N (N >= 1)", http.StatusBadRequest)
		return
	}
	if err := c.Reshard(n); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	c.mu.Lock()
	resp := struct {
		Generation uint64   `json:"generation"`
		Owners     []string `json:"owners"`
		Addrs      []string `json:"addrs"`
	}{Generation: c.cur.Gen}
	for _, id := range c.order {
		resp.Owners = append(resp.Owners, id)
		resp.Addrs = append(resp.Addrs, c.owners[id].addr)
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// Addrs returns the live owners' data-plane addresses in join order —
// the seed list for elastic clients.
func (c *Cluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.order))
	for _, id := range c.order {
		addrs = append(addrs, c.owners[id].addr)
	}
	return addrs
}

// Owner returns a live owner by ID, or nil.
func (c *Cluster) Owner(id string) *Owner {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.owners[id]
}

// OwnerIDs returns the live owner IDs in join order.
func (c *Cluster) OwnerIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// OwnerCount returns the live owner count.
func (c *Cluster) OwnerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.owners)
}

// Generation returns the cluster's published shard map generation.
func (c *Cluster) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Gen
}

// Len returns the keyspace size in samples.
func (c *Cluster) Len() int64 { return c.total }

// Registry returns the cluster's shared metrics registry.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// FlightRecorder returns the cluster-wide flight recorder, or nil when
// ElasticConfig.FlightRecCap was negative.
func (c *Cluster) FlightRecorder() *flightrec.Recorder { return c.rec }

// DebugAddr returns the debug/admin endpoint address, or "".
func (c *Cluster) DebugAddr() string {
	if c.dbg == nil {
		return ""
	}
	return c.dbg.Addr()
}

// MetricsURL returns the full /metrics scrape URL, or "".
func (c *Cluster) MetricsURL() string {
	if c.dbg == nil {
		return ""
	}
	return "http://" + c.dbg.Addr() + "/metrics"
}

// Close shuts the whole cluster down: admin endpoint, every owner, the
// migration pull clients, and the backing source.
func (c *Cluster) Close() error {
	c.closing.Store(true) // /readyz answers 503 from here on
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	owners := c.owners
	pulls := c.pulls
	c.owners = map[string]*Owner{}
	c.pulls = map[string]*transport.Client{}
	c.order = nil
	c.mu.Unlock()

	if c.dbg != nil {
		c.dbg.Close()
	}
	var err error
	for _, cl := range pulls {
		cl.Close()
	}
	for _, o := range owners {
		if cerr := o.srv.Close(); err == nil {
			err = cerr
		}
	}
	for _, cl := range c.closers {
		if cerr := cl(); err == nil {
			err = cerr
		}
	}
	return err
}
