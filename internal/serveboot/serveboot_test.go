package serveboot

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ddstore/internal/datasets"
	"ddstore/internal/graph"
	"ddstore/internal/transport"
)

// TestLazyChunkServes drives the CacheBytes serving mode end to end: a
// lazyChunk behind a real TCP server answers repeated Gets correctly, the
// second pass over the ids is all cache hits, and ids outside the served
// range are rejected without touching the backing source.
func TestLazyChunkServes(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 100})
	inst, err := Boot(Config{
		Source: ds, Lo: 10, Hi: 40,
		CacheBytes: 1 << 20, WriteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for pass := 0; pass < 2; pass++ {
		for id := int64(10); id < 40; id++ {
			g, err := cl.Get(id)
			if err != nil {
				t.Fatalf("pass %d get %d: %v", pass, id, err)
			}
			if g.ID != id {
				t.Fatalf("pass %d get %d returned sample %d", pass, id, g.ID)
			}
		}
	}
	st, ok := inst.CacheStats()
	if !ok {
		t.Fatal("lazy mode reported no cache")
	}
	if st.Misses != 30 {
		t.Fatalf("%d cache misses over two passes, want 30 (one per id)", st.Misses)
	}
	if st.Hits != 30 {
		t.Fatalf("%d cache hits on the repeat pass, want 30", st.Hits)
	}

	for _, id := range []int64{9, 40} {
		if _, err := cl.Get(id); err == nil {
			t.Fatalf("get %d outside the served range succeeded", id)
		}
	}
	if after, _ := inst.CacheStats(); after.Misses != st.Misses {
		t.Fatal("out-of-range gets reached the cache")
	}

	// ResetCache returns the instance to a cold state: the same ids miss
	// again on the next pass — the warm/cold phase seam the load
	// generator relies on.
	inst.ResetCache()
	if _, err := cl.Get(15); err != nil {
		t.Fatalf("get after reset: %v", err)
	}
	if after, _ := inst.CacheStats(); after.Misses != st.Misses+1 {
		t.Fatalf("post-reset get was not a miss (misses %d, want %d)", after.Misses, st.Misses+1)
	}
}

// TestDebugMetricsExposition boots an instance exactly the way
// ddstore-serve -debug-addr does — server metrics, cache collector,
// pre-registered resilience counters — drives a little traffic, and checks
// the /metrics and /healthz endpoints serve a scrape containing the full
// schema.
func TestDebugMetricsExposition(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	inst, err := Boot(Config{
		Source: ds, Lo: 0, Hi: 50,
		CacheBytes: 1 << 20, WriteTimeout: time.Second,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for pass := 0; pass < 2; pass++ {
		for id := int64(0); id < 5; id++ {
			if _, err := cl.Get(id); err != nil {
				t.Fatalf("get %d: %v", id, err)
			}
		}
	}

	get := func(path string) string {
		resp, err := http.Get("http://" + inst.DebugAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	if url := inst.MetricsURL(); !strings.HasSuffix(url, "/metrics") {
		t.Fatalf("MetricsURL = %q", url)
	}
	body := get("/metrics")
	for _, want := range []string{
		"ddstore_fetch_latency_seconds_bucket",
		"ddstore_fetch_latency_seconds_count 10",
		`ddstore_serve_requests_total{op="get"} 10`,
		`ddstore_events_total{event="cache-hits"} 5`,
		`ddstore_events_total{event="cache-misses"} 5`,
		`ddstore_events_total{event="net-retries"} 0`,
		`ddstore_events_total{event="net-failovers"} 0`,
		"ddstore_cache_hit_rate 0.5",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", body)
	}
}

// TestBootRejectsBadConfig covers the validation paths: no source, an
// unknown synthetic dataset, and an inverted or oversized range.
func TestBootRejectsBadConfig(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 10})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no source", Config{Lo: 0, Hi: 10}},
		{"unknown dataset", Config{Dataset: "nope", N: 10, Hi: -1}},
		{"inverted range", Config{Source: ds, Lo: 5, Hi: 5}},
		{"range past end", Config{Source: ds, Lo: 0, Hi: 11}},
		{"negative lo", Config{Source: ds, Lo: -1, Hi: 5}},
		{"bad cache policy", Config{Source: ds, Lo: 0, Hi: 10, CacheBytes: 1 << 20, CachePolicy: "mru"}},
		{"bad tenant spec", Config{Source: ds, Lo: 0, Hi: 10, Tenants: "a:turbo=9"}},
		{"dup tenant", Config{Source: ds, Lo: 0, Hi: 10, Tenants: "a:rate=1;a:rate=2"}},
	}
	for _, tc := range cases {
		if inst, err := Boot(tc.cfg); err == nil {
			inst.Close()
			t.Errorf("%s: Boot succeeded", tc.name)
		}
	}
}

// TestBootPreloadMode exercises the eager-preload path (no cache) and the
// default ephemeral loopback address.
func TestBootPreloadMode(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	inst, err := Boot(Config{Source: ds, Lo: 0, Hi: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	if lo, hi := inst.Range(); lo != 0 || hi != 20 {
		t.Fatalf("Range() = [%d,%d), want [0,20)", lo, hi)
	}
	if _, ok := inst.CacheStats(); ok {
		t.Fatal("preload mode reported a cache")
	}
	if inst.DebugAddr() != "" || inst.MetricsURL() != "" {
		t.Fatal("debug endpoint reported without DebugAddr")
	}
	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	lo, hi, err := cl.Meta()
	if err != nil || lo != 0 || hi != 20 {
		t.Fatalf("Meta() = %d,%d,%v", lo, hi, err)
	}
	if g, err := cl.Get(7); err != nil || g.ID != 7 {
		t.Fatalf("Get(7) = %v, %v", g, err)
	}
}

// blockingSource stalls reads of one sample id until release is closed,
// so a test can hold a request in flight server-side at will.
type blockingSource struct {
	SampleSource
	block   int64
	release chan struct{}
}

func (b *blockingSource) ReadSample(id int64) (*graph.Graph, error) {
	if id == b.block {
		<-b.release
	}
	return b.SampleSource.ReadSample(id)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCloseDrainsGracefully is the drain regression test: with the front
// end enabled, Close must let an in-flight request finish while new work
// is refused with the overloaded/draining wire status, and the debug
// endpoint must stay scrapeable — with the draining gauge raised — for
// the whole drain (it used to be torn down alongside the server).
func TestCloseDrainsGracefully(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	src := &blockingSource{SampleSource: ds, block: 7, release: make(chan struct{})}
	inst, err := Boot(Config{
		Source: src, Lo: 0, Hi: 50,
		CacheBytes: 1 << 20, WriteTimeout: time.Second,
		DebugAddr:  "127.0.0.1:0",
		QueueDepth: 8, FrontendWorkers: 2, DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	scrape := func() (int, string) {
		resp, err := http.Get(inst.MetricsURL())
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if _, body := scrape(); !strings.Contains(body, "ddstore_serve_draining 0") {
		t.Fatal("draining gauge not 0 before Close")
	}

	cl, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get(3); err != nil {
		t.Fatalf("warmup get: %v", err)
	}

	type getResult struct {
		g   *graph.Graph
		err error
	}
	inflight := make(chan getResult, 1)
	go func() {
		g, err := cl.Get(7) // blocks in ReadSample until release closes
		inflight <- getResult{g, err}
	}()
	waitFor(t, "request in flight", func() bool {
		st, _ := inst.FrontendStats()
		return st.InFlight >= 1
	})

	closed := make(chan struct{})
	go func() {
		inst.Close()
		close(closed)
	}()
	waitFor(t, "drain to start", func() bool {
		st, _ := inst.FrontendStats()
		return st.Draining
	})

	// Mid-drain: /metrics still answers and shows the draining gauge up.
	if code, body := scrape(); code != http.StatusOK {
		t.Fatalf("/metrics during drain: status %d", code)
	} else if !strings.Contains(body, "ddstore_serve_draining 1") {
		t.Fatal("/metrics during drain missing ddstore_serve_draining 1")
	}

	// Mid-drain: new connections are admitted at the socket but every
	// request is refused with the overloaded status, so clients back off
	// instead of failing over.
	cl2, err := transport.Dial(inst.Addr())
	if err != nil {
		t.Fatalf("dial during drain: %v", err)
	}
	defer cl2.Close()
	if _, err := cl2.Get(3); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("get during drain: %v, want ErrOverloaded", err)
	}

	// The in-flight request completes once the source unblocks, and Close
	// then finishes.
	close(src.release)
	res := <-inflight
	if res.err != nil || res.g.ID != 7 {
		t.Fatalf("in-flight get = %v, %v; want sample 7", res.g, res.err)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the drain finished")
	}
	st, ok := inst.FrontendStats()
	if !ok || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("front end not empty after Close: %+v", st)
	}
}

// TestFrontendShedsOverRate proves the wire-level shed path end to end:
// a tenant with a 1-token budget gets exactly one admit; the next request
// comes back as the distinguishable overloaded status and is counted.
func TestFrontendShedsOverRate(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 20})
	inst, err := Boot(Config{
		Source: ds, Lo: 0, Hi: 20, WriteTimeout: time.Second,
		Tenants: "tiny:rate=0.001,burst=1", FrontendWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	cl, err := transport.DialOptions(inst.Addr(), transport.ClientOptions{
		Tenant: "tiny",
		Policy: transport.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get(3); err != nil {
		t.Fatalf("budgeted get: %v", err)
	}
	if _, err := cl.Get(4); !errors.Is(err, transport.ErrOverloaded) {
		t.Fatalf("over-budget get: %v, want ErrOverloaded", err)
	}
	st, ok := inst.FrontendStats()
	if !ok {
		t.Fatal("no front end stats")
	}
	if st.ShedByReason["rate"] == 0 {
		t.Fatalf("no rate sheds recorded: %+v", st)
	}
	if st.AdmittedByClass[transport.ClassLookup] != 1 { // hello is not a data op
		t.Fatalf("admitted = %+v, want exactly one lookup", st.AdmittedByClass)
	}
}
