package main

import (
	"net"
	"testing"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/datasets"
	"ddstore/internal/transport"
)

// TestLazyChunkServes drives the -cache-bytes serving mode end to end: a
// lazyChunk behind a real TCP server answers repeated Gets correctly, the
// second pass over the ids is all cache hits, and ids outside the served
// range are rejected without touching the backing source.
func TestLazyChunkServes(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 100})
	hot := cache.New(cache.Options{MaxBytes: 1 << 20})
	chunk := &lazyChunk{src: ds, lo: 10, hi: 40, c: hot}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeListener(ln, chunk, transport.ServerOptions{WriteTimeout: time.Second})
	defer srv.Close()

	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for pass := 0; pass < 2; pass++ {
		for id := int64(10); id < 40; id++ {
			g, err := cl.Get(id)
			if err != nil {
				t.Fatalf("pass %d get %d: %v", pass, id, err)
			}
			if g.ID != id {
				t.Fatalf("pass %d get %d returned sample %d", pass, id, g.ID)
			}
		}
	}
	st := hot.Stats()
	if st.Misses != 30 {
		t.Fatalf("%d cache misses over two passes, want 30 (one per id)", st.Misses)
	}
	if st.Hits != 30 {
		t.Fatalf("%d cache hits on the repeat pass, want 30", st.Hits)
	}

	for _, id := range []int64{9, 40} {
		if _, err := cl.Get(id); err == nil {
			t.Fatalf("get %d outside the served range succeeded", id)
		}
	}
	if after := hot.Stats(); after.Misses != st.Misses {
		t.Fatal("out-of-range gets reached the cache")
	}
}
