package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/datasets"
	"ddstore/internal/obs"
	"ddstore/internal/transport"
)

// TestLazyChunkServes drives the -cache-bytes serving mode end to end: a
// lazyChunk behind a real TCP server answers repeated Gets correctly, the
// second pass over the ids is all cache hits, and ids outside the served
// range are rejected without touching the backing source.
func TestLazyChunkServes(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 100})
	hot := cache.New(cache.Options{MaxBytes: 1 << 20})
	chunk := &lazyChunk{src: ds, lo: 10, hi: 40, c: hot}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeListener(ln, chunk, transport.ServerOptions{WriteTimeout: time.Second})
	defer srv.Close()

	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for pass := 0; pass < 2; pass++ {
		for id := int64(10); id < 40; id++ {
			g, err := cl.Get(id)
			if err != nil {
				t.Fatalf("pass %d get %d: %v", pass, id, err)
			}
			if g.ID != id {
				t.Fatalf("pass %d get %d returned sample %d", pass, id, g.ID)
			}
		}
	}
	st := hot.Stats()
	if st.Misses != 30 {
		t.Fatalf("%d cache misses over two passes, want 30 (one per id)", st.Misses)
	}
	if st.Hits != 30 {
		t.Fatalf("%d cache hits on the repeat pass, want 30", st.Hits)
	}

	for _, id := range []int64{9, 40} {
		if _, err := cl.Get(id); err == nil {
			t.Fatalf("get %d outside the served range succeeded", id)
		}
	}
	if after := hot.Stats(); after.Misses != st.Misses {
		t.Fatal("out-of-range gets reached the cache")
	}
}

// TestDebugMetricsExposition wires a registry exactly the way -debug-addr
// does — server metrics, cache collector, pre-registered resilience
// counters — drives a little traffic, and checks the /metrics and /healthz
// endpoints serve a scrape containing the full schema.
func TestDebugMetricsExposition(t *testing.T) {
	ds := datasets.HomoLumo(datasets.Config{NumGraphs: 50})
	hot := cache.New(cache.Options{MaxBytes: 1 << 20})
	chunk := &lazyChunk{src: ds, lo: 0, hi: 50, c: hot}

	reg := obs.NewRegistry()
	obs.NewCounterSink(reg, obs.MetricEvents, "event",
		cache.CounterHits, cache.CounterMisses, cache.CounterCoalesced, cache.CounterEvictions,
		transport.CounterRoundTrips, transport.CounterRetries, transport.CounterReconnects,
		transport.CounterTimeouts, transport.CounterChecksumErrors,
		transport.CounterFailovers, transport.CounterGiveUps)
	obs.FetchLatencyHistogram(reg)
	obs.CollectGoRuntime(reg)
	obs.CollectCache(reg, hot.Stats)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.ServeListener(ln, chunk, transport.ServerOptions{WriteTimeout: time.Second, Metrics: reg})
	defer srv.Close()

	cl, err := transport.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for pass := 0; pass < 2; pass++ {
		for id := int64(0); id < 5; id++ {
			if _, err := cl.Get(id); err != nil {
				t.Fatalf("get %d: %v", id, err)
			}
		}
	}

	dbg, err := obs.StartDebug("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + dbg.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q", body)
	}
	body := get("/metrics")
	for _, want := range []string{
		"ddstore_fetch_latency_seconds_bucket",
		"ddstore_fetch_latency_seconds_count 10",
		`ddstore_serve_requests_total{op="get"} 10`,
		`ddstore_events_total{event="cache-hits"} 5`,
		`ddstore_events_total{event="cache-misses"} 5`,
		`ddstore_events_total{event="net-retries"} 0`,
		`ddstore_events_total{event="net-failovers"} 0`,
		"ddstore_cache_hit_rate 0.5",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", body)
	}
}
