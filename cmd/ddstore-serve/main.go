// Command ddstore-serve exposes a slice of a dataset over the TCP data
// plane, so DDStore chunks can be fetched between real processes — one
// server per node, for example. Peers connect with transport.Dial /
// transport.NewGroup (or any client speaking the simple length-prefixed
// protocol in internal/transport). The assembly itself lives in
// internal/serveboot so tests and the load-generator harness can boot the
// same server in-process on a loopback port.
//
// Usage:
//
//	# terminal 1-3: serve thirds of a CFF dataset
//	ddstore-serve -cff /tmp/aisd -lo 0     -hi 33000 -addr 127.0.0.1:7001
//	ddstore-serve -cff /tmp/aisd -lo 33000 -hi 66000 -addr 127.0.0.1:7002
//	ddstore-serve -cff /tmp/aisd -lo 66000 -hi 99000 -addr 127.0.0.1:7003
//
//	# or serve a synthetic dataset directly, no files needed
//	ddstore-serve -dataset homolumo -n 10000 -lo 0 -hi 5000 -addr 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ddstore/internal/faultnet"
	"ddstore/internal/serveboot"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7001", "listen address")
		cffDir = flag.String("cff", "", "serve from a CFF directory")
		pffDir = flag.String("pff", "", "serve from a PFF directory")
		dsName = flag.String("dataset", "", "serve a synthetic dataset: ising, homolumo, discrete, smooth")
		n      = flag.Int("n", 10000, "synthetic dataset size")
		bins   = flag.Int("bins", 0, "smooth-spectrum grid size")
		lo     = flag.Int64("lo", 0, "first sample id served (inclusive)")
		hi     = flag.Int64("hi", -1, "last sample id served (exclusive; -1 = dataset end)")

		// Elastic mode: boot a whole owner cluster behind a live shard map
		// instead of one static-range server. Owners can be added/removed
		// at runtime via the debug endpoint's /admin/reshard.
		elasticN     = flag.Int("elastic", 0, "boot an elastic cluster with this many owners routing through a live shard map (0 = single static server)")
		elasticAddrs = flag.String("elastic-addrs", "", "comma-separated listen addresses for the initial elastic owners (empty = ephemeral loopback ports)")
		width        = flag.Int("width", 0, "per-shard replica width the elastic planner maintains (0 = 1)")

		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-response write deadline (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = disabled)")

		// Front-end flags enable multi-tenant admission control: per-tenant
		// budgets, priority queues, load shedding, and graceful drain.
		tenants      = flag.String("tenants", "", `per-tenant budgets, e.g. "alpha:rate=500,burst=50,conns=8;*:rate=100" (setting any front-end flag enables admission control)`)
		maxConns     = flag.Int("max-conns", 0, "cap concurrent client connections (0 = unlimited)")
		queueDepth   = flag.Int("queue-depth", 0, "bound each priority-class request queue (0 = default)")
		feWorkers    = flag.Int("frontend-workers", 0, "request worker permits draining the queues (0 = GOMAXPROCS)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "graceful-drain bound on shutdown")

		// Flight-recorder flags tune the always-on ring of anomalous
		// requests (slow/errored/shed/stale) served at /debug/flightrecorder.
		flightCap  = flag.Int("flightrec", 0, "flight recorder ring capacity (0 = default 256, negative = disabled)")
		slowThresh = flag.Duration("slow-threshold", 0, "flight-record successful requests slower than this (0 = default 250ms, negative = disabled)")
		flightDir  = flag.String("flightrec-dir", "", "snapshot the flight recorder here when shed/stale rates spike (empty = no snapshots)")

		// Cache flags switch from eager preload to lazy on-demand serving
		// through a byte-budgeted hot-sample cache.
		cacheBytes = flag.Int64("cache-bytes", 0, "serve lazily through a cache of this many bytes instead of preloading the range (0 = preload)")
		cachePol   = flag.String("cache-policy", "lru", "cache eviction policy: lru, fifo, clock")

		// Chaos flags wrap the listener in a faultnet injector, turning the
		// server into a misbehaving peer for resilience drills.
		chaosSeed      = flag.Int64("chaos-seed", 1, "fault injection RNG seed")
		chaosReset     = flag.Float64("chaos-reset", 0, "probability of a connection reset per I/O op")
		chaosStallProb = flag.Float64("chaos-stall-prob", 0, "probability of a stall per I/O op")
		chaosStall     = flag.Duration("chaos-stall", 200*time.Millisecond, "stall duration when injected")
		chaosCorrupt   = flag.Float64("chaos-corrupt", 0, "probability of flipping a byte per write")
		chaosSlowStart = flag.Duration("chaos-slow-start", 0, "extra latency on each connection's first op")
	)
	flag.Parse()

	chaotic := *chaosReset > 0 || *chaosStallProb > 0 || *chaosCorrupt > 0 || *chaosSlowStart > 0
	var chaos *faultnet.Scenario
	if chaotic {
		chaos = &faultnet.Scenario{
			Seed:      *chaosSeed,
			ResetProb: *chaosReset,
			StallProb: *chaosStallProb, StallFor: *chaosStall,
			CorruptProb: *chaosCorrupt,
			SlowStart:   *chaosSlowStart,
		}
	}

	if *elasticN > 0 {
		runElastic(elasticFlags{
			owners: *elasticN, addrs: *elasticAddrs, width: *width,
			cffDir: *cffDir, pffDir: *pffDir, dataset: *dsName, n: *n, bins: *bins,
			writeTimeout: *writeTimeout, idleTimeout: *idleTimeout,
			debugAddr: *debugAddr, chaos: chaos,
			flightCap: *flightCap, slowThresh: *slowThresh,
		})
		return
	}

	cfg := serveboot.Config{
		Addr:         *addr,
		CFFDir:       *cffDir,
		PFFDir:       *pffDir,
		Dataset:      *dsName,
		N:            *n,
		Bins:         *bins,
		Lo:           *lo,
		Hi:           *hi,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		CacheBytes:   *cacheBytes,
		CachePolicy:  *cachePol,
		DebugAddr:    *debugAddr,

		Tenants:         *tenants,
		MaxConns:        *maxConns,
		QueueDepth:      *queueDepth,
		FrontendWorkers: *feWorkers,
		DrainTimeout:    *drainTimeout,

		FlightRecCap:  *flightCap,
		SlowThreshold: *slowThresh,
		FlightRecDir:  *flightDir,
	}
	cfg.Chaos = chaos

	inst, err := serveboot.Boot(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-serve: %v\n", err)
		os.Exit(2)
	}
	srvLo, srvHi := inst.Range()
	fmt.Printf("serving samples [%d,%d) on %s (ctrl-c to stop)\n", srvLo, srvHi, inst.Addr())
	if dbg := inst.DebugAddr(); dbg != "" {
		fmt.Printf("debug server on http://%s (/metrics, /healthz, /readyz, /debug/flightrecorder, /debug/pprof/)\n", dbg)
	}
	if pol := inst.CachePolicy(); pol != "" {
		fmt.Printf("lazy mode: %s cache, %d byte budget\n", pol, *cacheBytes)
	}
	if _, ok := inst.FrontendStats(); ok {
		fmt.Printf("front end: tenants=%q max-conns=%d queue-depth=%d workers=%d drain-timeout=%s\n",
			*tenants, *maxConns, *queueDepth, *feWorkers, *drainTimeout)
	}
	if chaotic {
		fmt.Printf("chaos mode: seed=%d reset=%g stall=%g/%s corrupt=%g slow-start=%s\n",
			*chaosSeed, *chaosReset, *chaosStallProb, *chaosStall, *chaosCorrupt, *chaosSlowStart)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	inst.Close()
	if st, ok := inst.FrontendStats(); ok {
		fmt.Printf("\nfront end: %d lookup + %d bulk admitted, %d shed %v\n",
			st.AdmittedByClass[0], st.AdmittedByClass[1], st.Shed, st.ShedByReason)
	}
	if st, ok := inst.FaultStats(); ok {
		fmt.Printf("\ninjected faults: %+v\n", st)
	}
	if st, ok := inst.CacheStats(); ok {
		fmt.Printf("\ncache: %.1f%% hit rate, %d hits, %d misses, %d evictions, %d coalesced, %d entries / %d B resident\n",
			100*st.HitRate(), st.Hits, st.Misses, st.Evictions, st.Coalesced, st.Entries, st.Bytes)
	}
	fmt.Println("shut down")
}

type elasticFlags struct {
	owners       int
	addrs        string
	width        int
	cffDir       string
	pffDir       string
	dataset      string
	n, bins      int
	writeTimeout time.Duration
	idleTimeout  time.Duration
	debugAddr    string
	chaos        *faultnet.Scenario
	flightCap    int
	slowThresh   time.Duration
}

// runElastic boots an in-process owner cluster behind a live shard map
// and serves until interrupted. Membership changes at runtime through the
// debug endpoint: GET /admin/reshard?owners=N migrates chunks and
// publishes the next generation while clients keep loading.
func runElastic(f elasticFlags) {
	var addrs []string
	if f.addrs != "" {
		for _, a := range strings.Split(f.addrs, ",") {
			addrs = append(addrs, strings.TrimSpace(a))
		}
	}
	c, err := serveboot.BootCluster(serveboot.ElasticConfig{
		CFFDir:        f.cffDir,
		PFFDir:        f.pffDir,
		Dataset:       f.dataset,
		N:             f.n,
		Bins:          f.bins,
		Owners:        f.owners,
		Addrs:         addrs,
		Width:         f.width,
		WriteTimeout:  f.writeTimeout,
		IdleTimeout:   f.idleTimeout,
		DebugAddr:     f.debugAddr,
		Chaos:         f.chaos,
		FlightRecCap:  f.flightCap,
		SlowThreshold: f.slowThresh,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-serve: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("elastic cluster: %d owners serving %d samples at generation %d (ctrl-c to stop)\n",
		c.OwnerCount(), c.Len(), c.Generation())
	for _, id := range c.OwnerIDs() {
		fmt.Printf("  %s on %s\n", id, c.Owner(id).Addr())
	}
	if dbg := c.DebugAddr(); dbg != "" {
		fmt.Printf("debug server on http://%s (/metrics, /healthz, /readyz, /debug/flightrecorder, /admin/reshard?owners=N)\n", dbg)
	}
	if f.chaos != nil {
		fmt.Printf("chaos mode: %+v\n", *f.chaos)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	gen, owners := c.Generation(), c.OwnerCount()
	c.Close()
	fmt.Printf("shut down at generation %d with %d owners\n", gen, owners)
}
