// Command ddstore-serve exposes a slice of a dataset over the TCP data
// plane, so DDStore chunks can be fetched between real processes — one
// server per node, for example. Peers connect with transport.Dial /
// transport.NewGroup (or any client speaking the simple length-prefixed
// protocol in internal/transport).
//
// Usage:
//
//	# terminal 1-3: serve thirds of a CFF dataset
//	ddstore-serve -cff /tmp/aisd -lo 0     -hi 33000 -addr 127.0.0.1:7001
//	ddstore-serve -cff /tmp/aisd -lo 33000 -hi 66000 -addr 127.0.0.1:7002
//	ddstore-serve -cff /tmp/aisd -lo 66000 -hi 99000 -addr 127.0.0.1:7003
//
//	# or serve a synthetic dataset directly, no files needed
//	ddstore-serve -dataset homolumo -n 10000 -lo 0 -hi 5000 -addr 127.0.0.1:7001
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/cff"
	"ddstore/internal/datasets"
	"ddstore/internal/faultnet"
	"ddstore/internal/graph"
	"ddstore/internal/obs"
	"ddstore/internal/pff"
	"ddstore/internal/transport"
)

// sampleSource is the subset of dataset/store behaviour the server needs.
type sampleSource interface {
	Len() int
	ReadSample(id int64) (*graph.Graph, error)
}

// lazyChunk is a ChunkSource that encodes samples on demand through a
// byte-budgeted cache instead of preloading the whole range — the
// -cache-bytes serving mode for ranges too large to hold encoded in
// memory. Concurrent requests for the same cold sample are coalesced into
// one backing read.
type lazyChunk struct {
	src    sampleSource
	lo, hi int64
	c      *cache.Cache
}

func (l *lazyChunk) LocalRange() (int64, int64) { return l.lo, l.hi }

func (l *lazyChunk) LocalSampleBytes(id int64) ([]byte, error) {
	if id < l.lo || id >= l.hi {
		return nil, fmt.Errorf("sample %d not in chunk [%d,%d)", id, l.lo, l.hi)
	}
	return l.c.GetOrFetch(id, func() ([]byte, error) {
		g, err := l.src.ReadSample(id)
		if err != nil {
			return nil, err
		}
		return g.Encode(), nil
	})
}

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7001", "listen address")
		cffDir = flag.String("cff", "", "serve from a CFF directory")
		pffDir = flag.String("pff", "", "serve from a PFF directory")
		dsName = flag.String("dataset", "", "serve a synthetic dataset: ising, homolumo, discrete, smooth")
		n      = flag.Int("n", 10000, "synthetic dataset size")
		bins   = flag.Int("bins", 0, "smooth-spectrum grid size")
		lo     = flag.Int64("lo", 0, "first sample id served (inclusive)")
		hi     = flag.Int64("hi", -1, "last sample id served (exclusive; -1 = dataset end)")

		writeTimeout = flag.Duration("write-timeout", 5*time.Second, "per-response write deadline (0 = none)")
		idleTimeout  = flag.Duration("idle-timeout", 0, "close connections idle this long (0 = never)")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /healthz, and /debug/pprof on this address (empty = disabled)")

		// Cache flags switch from eager preload to lazy on-demand serving
		// through a byte-budgeted hot-sample cache.
		cacheBytes = flag.Int64("cache-bytes", 0, "serve lazily through a cache of this many bytes instead of preloading the range (0 = preload)")
		cachePol   = flag.String("cache-policy", "lru", "cache eviction policy: lru, fifo, clock")

		// Chaos flags wrap the listener in a faultnet injector, turning the
		// server into a misbehaving peer for resilience drills.
		chaosSeed      = flag.Int64("chaos-seed", 1, "fault injection RNG seed")
		chaosReset     = flag.Float64("chaos-reset", 0, "probability of a connection reset per I/O op")
		chaosStallProb = flag.Float64("chaos-stall-prob", 0, "probability of a stall per I/O op")
		chaosStall     = flag.Duration("chaos-stall", 200*time.Millisecond, "stall duration when injected")
		chaosCorrupt   = flag.Float64("chaos-corrupt", 0, "probability of flipping a byte per write")
		chaosSlowStart = flag.Duration("chaos-slow-start", 0, "extra latency on each connection's first op")
	)
	flag.Parse()

	var src sampleSource
	var err error
	switch {
	case *cffDir != "":
		var st *cff.Store
		if st, err = cff.Open(*cffDir); err == nil {
			defer st.Close()
			src = st
		}
	case *pffDir != "":
		src, err = pff.Open(*pffDir)
	case *dsName != "":
		cfg := datasets.Config{NumGraphs: *n, SpectrumBins: *bins}
		switch *dsName {
		case "ising":
			src = datasets.Ising(cfg)
		case "homolumo":
			src = datasets.HomoLumo(cfg)
		case "discrete":
			src = datasets.AISDExDiscrete(cfg)
		case "smooth":
			src = datasets.AISDExSmooth(cfg)
		default:
			err = fmt.Errorf("unknown dataset %q", *dsName)
		}
	default:
		err = fmt.Errorf("one of -cff, -pff, or -dataset is required")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-serve: %v\n", err)
		os.Exit(2)
	}

	end := *hi
	if end < 0 {
		end = int64(src.Len())
	}
	if *lo < 0 || end > int64(src.Len()) || *lo >= end {
		fmt.Fprintf(os.Stderr, "ddstore-serve: bad range [%d,%d) for %d samples\n", *lo, end, src.Len())
		os.Exit(2)
	}

	var chunk transport.ChunkSource
	var hotCache *cache.Cache
	if *cacheBytes > 0 {
		// Lazy mode: no preload; samples are read and encoded on first
		// request and held under the cache's byte budget.
		pol, err := cache.ParsePolicy(*cachePol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-serve: %v\n", err)
			os.Exit(2)
		}
		hotCache = cache.New(cache.Options{MaxBytes: *cacheBytes, Policy: pol})
		chunk = &lazyChunk{src: src, lo: *lo, hi: end, c: hotCache}
	} else {
		// Materialize the served chunk (encoded) so requests are memory
		// reads — the same preload step a DDStore rank performs.
		graphs := make([]*graph.Graph, 0, end-*lo)
		for id := *lo; id < end; id++ {
			g, err := src.ReadSample(id)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ddstore-serve: preload %d: %v\n", id, err)
				os.Exit(1)
			}
			graphs = append(graphs, g)
		}
		chunk = transport.NewMemChunk(*lo, graphs)
	}
	opts := transport.ServerOptions{WriteTimeout: *writeTimeout, IdleTimeout: *idleTimeout}

	// The debug endpoint exports the server's request/latency metrics plus
	// cache and runtime gauges. Known resilience counters are pre-registered
	// at zero so a scrape shows the full schema before any traffic.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		obs.NewCounterSink(reg, obs.MetricEvents, "event",
			cache.CounterHits, cache.CounterMisses, cache.CounterCoalesced, cache.CounterEvictions,
			transport.CounterRoundTrips, transport.CounterRetries, transport.CounterReconnects,
			transport.CounterTimeouts, transport.CounterChecksumErrors,
			transport.CounterFailovers, transport.CounterGiveUps)
		obs.FetchLatencyHistogram(reg)
		obs.CollectGoRuntime(reg)
		if hotCache != nil {
			obs.CollectCache(reg, hotCache.Stats)
		}
		opts.Metrics = reg
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-serve: %v\n", err)
		os.Exit(1)
	}
	chaotic := *chaosReset > 0 || *chaosStallProb > 0 || *chaosCorrupt > 0 || *chaosSlowStart > 0
	var injector *faultnet.Injector
	if chaotic {
		injector = faultnet.New(faultnet.Scenario{
			Seed:      *chaosSeed,
			ResetProb: *chaosReset,
			StallProb: *chaosStallProb, StallFor: *chaosStall,
			CorruptProb: *chaosCorrupt,
			SlowStart:   *chaosSlowStart,
		})
		ln = injector.Listener(ln)
	}
	srv := transport.ServeListener(ln, chunk, opts)
	fmt.Printf("serving samples [%d,%d) on %s (ctrl-c to stop)\n", *lo, end, srv.Addr())
	if reg != nil {
		dbg, err := obs.StartDebug(*debugAddr, reg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-serve: debug server: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (/metrics, /healthz, /debug/pprof/)\n", dbg.Addr())
	}
	if hotCache != nil {
		fmt.Printf("lazy mode: %s cache, %d byte budget\n", hotCache.Policy(), *cacheBytes)
	}
	if chaotic {
		fmt.Printf("chaos mode: seed=%d reset=%g stall=%g/%s corrupt=%g slow-start=%s\n",
			*chaosSeed, *chaosReset, *chaosStallProb, *chaosStall, *chaosCorrupt, *chaosSlowStart)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	if injector != nil {
		fmt.Printf("\ninjected faults: %+v\n", injector.Stats())
	}
	if hotCache != nil {
		st := hotCache.Stats()
		fmt.Printf("\ncache: %.1f%% hit rate, %d hits, %d misses, %d evictions, %d coalesced, %d entries / %d B resident\n",
			100*st.HitRate(), st.Hits, st.Misses, st.Evictions, st.Coalesced, st.Entries, st.Bytes)
	}
	fmt.Println("shut down")
}
