// Command ddstore-train drives one distributed training run: pick a
// machine model, a rank count, a dataset, and a data management method, and
// it reports throughput and the per-phase time breakdown — the building
// block the experiment suite is made of, exposed for ad-hoc exploration.
//
// Usage:
//
//	ddstore-train -machine perlmutter -ranks 64 -dataset discrete -method ddstore
//	ddstore-train -machine summit -ranks 48 -dataset ising -method pff -epochs 2
//	ddstore-train -ranks 4 -dataset homolumo -method ddstore -real -epochs 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ddstore/internal/cache"
	"ddstore/internal/cff"
	"ddstore/internal/cluster"
	"ddstore/internal/comm"
	"ddstore/internal/core"
	"ddstore/internal/datasets"
	"ddstore/internal/ddp"
	"ddstore/internal/fetch"
	"ddstore/internal/hydra"
	"ddstore/internal/obs"
	"ddstore/internal/pff"
	"ddstore/internal/pfs"
	"ddstore/internal/trace"
)

func main() {
	var (
		machineName = flag.String("machine", "perlmutter", "machine model: summit, perlmutter, laptop")
		ranks       = flag.Int("ranks", 16, "number of simulated ranks (GPUs)")
		dsName      = flag.String("dataset", "discrete", "dataset: ising, homolumo, discrete, smooth")
		n           = flag.Int("n", 20000, "dataset size in graphs")
		bins        = flag.Int("bins", 375, "smooth-spectrum grid size")
		method      = flag.String("method", "ddstore", "data management: pff, cff, ddstore")
		width       = flag.Int("width", 0, "DDStore width (0 = all ranks, single replica)")
		batch       = flag.Int("batch", 128, "local batch size")
		epochs      = flag.Int("epochs", 3, "training epochs")
		steps       = flag.Int("steps", 0, "max steps per epoch (0 = full epoch)")
		seed        = flag.Uint64("seed", 1, "random seed")
		real        = flag.Bool("real", false, "train a real (scaled-down) HydraGNN instead of the cost model")
		hidden      = flag.Int("hidden", 16, "hidden dim for -real")
		localShuf   = flag.Bool("local-shuffle", false, "use sharding with local shuffling instead of global shuffles (the conventional baseline of paper §2.2)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "per-rank remote-sample cache budget for -method ddstore (0 = no cache)")
		cachePol    = flag.String("cache-policy", "lru", "cache eviction policy: lru, fifo, clock")
		debugAddr   = flag.String("debug-addr", "", "serve /metrics, /healthz, /trace, and /debug/pprof on this address during the run (empty = disabled)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace-event JSON file of per-batch spans (load in about://tracing)")
		metricsJSON = flag.String("metrics-json", "", "write the final metrics registry snapshot to this JSON file")
	)
	flag.Parse()

	cachePolicy, err := cache.ParsePolicy(*cachePol)
	if err != nil {
		fatalf("%v", err)
	}

	var machine *cluster.Machine
	switch *machineName {
	case "summit":
		machine = cluster.Summit()
	case "perlmutter":
		machine = cluster.Perlmutter()
	case "laptop":
		machine = cluster.Laptop()
	default:
		fatalf("unknown machine %q", *machineName)
	}

	cfg := datasets.Config{NumGraphs: *n, SpectrumBins: *bins}
	var ds *datasets.Dataset
	switch *dsName {
	case "ising":
		ds = datasets.Ising(cfg)
	case "homolumo":
		ds = datasets.HomoLumo(cfg)
	case "discrete":
		ds = datasets.AISDExDiscrete(cfg)
	case "smooth":
		ds = datasets.AISDExSmooth(cfg)
	default:
		fatalf("unknown dataset %q", *dsName)
	}

	world, err := comm.NewWorld(*ranks, *seed, comm.WithMachine(machine))
	if err != nil {
		fatalf("%v", err)
	}

	// Baseline filesystems are registered once, outside the ranks.
	var fs *pfs.PFS
	var sizes []int64
	var layout *cff.SimLayout
	switch *method {
	case "pff":
		fs = pfs.New(machine, *ranks)
		if sizes, err = pff.RegisterSim(fs, ds); err != nil {
			fatalf("%v", err)
		}
	case "cff":
		fs = pfs.New(machine, *ranks)
		if layout, err = cff.RegisterSim(fs, ds, 6); err != nil {
			fatalf("%v", err)
		}
	case "ddstore":
	default:
		fatalf("unknown method %q", *method)
	}

	simModel := hydra.PaperConfig(ds.NodeFeatDim(), ds.EdgeFeatDim(), ds.OutputDim())
	merged := trace.New()

	// One registry and one trace sink span the whole run: every rank's
	// engine feeds the shared latency histogram and event counters, and
	// each rank records batch spans into its own ring of the sink.
	reg := obs.NewRegistry()
	traces := obs.NewTraceSink(obs.DefaultSpanCap)
	if *debugAddr != "" {
		obs.CollectGoRuntime(reg)
		dbg, err := obs.StartDebug(*debugAddr, reg, traces)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (/metrics, /healthz, /trace, /debug/pprof/)\n", dbg.Addr())
	}

	var res *ddp.Result
	var cacheStats cache.Stats
	var latency fetch.LatencySummary
	var mu sync.Mutex
	err = world.Run(func(c *comm.Comm) error {
		prof := trace.New()
		spans := traces.NewRing("train", c.Rank())
		var loader ddp.Loader
		var store *core.Store
		switch *method {
		case "pff":
			loader = &ddp.SourceLoader{Source: pff.NewSim(fs, ds, sizes, c.Clock(), c.RNG())}
		case "cff":
			loader = &ddp.SourceLoader{Source: cff.NewSim(fs, ds, layout, c.Clock(), c.RNG())}
		case "ddstore":
			st, err := core.Open(c, ds, core.Options{
				Width: *width, Profiler: prof,
				CacheBytes: *cacheBytes, CachePolicy: cachePolicy,
				Metrics: reg, Spans: spans,
			})
			if err != nil {
				return err
			}
			store = st
			loader = &ddp.PlaneLoader{Plane: st}
		}
		tc := ddp.Config{
			Loader:           loader,
			LocalBatch:       *batch,
			Epochs:           *epochs,
			MaxStepsPerEpoch: *steps,
			Seed:             *seed,
			LocalShuffle:     *localShuf,
			SimModel:         simModel,
			Profiler:         prof,
			Spans:            spans,
			Telemetry:        obs.NewTelemetry(c, prof),
		}
		if *real {
			tc.Model = hydra.New(hydra.Config{
				NodeFeatDim: ds.NodeFeatDim(),
				EdgeFeatDim: ds.EdgeFeatDim(),
				HiddenDim:   *hidden,
				ConvLayers:  2,
				FCLayers:    2,
				OutputDim:   ds.OutputDim(),
				Seed:        *seed,
			})
			tc.LR = 1e-3
			tc.Eval = true
			tc.Plateau = true
		}
		r, err := ddp.Run(c, tc)
		if err != nil {
			return err
		}
		mu.Lock()
		merged.Merge(prof)
		if c.Rank() == 0 {
			res = r
			if dp, ok := loader.(interface{ LatencyStats() fetch.LatencySummary }); ok {
				latency = dp.LatencyStats()
			}
			if store != nil {
				cacheStats = store.CacheStats()
			}
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%s | %d ranks (%d nodes) | %s | %s | batch %d\n",
		machine.Name, *ranks, machine.Nodes(*ranks), ds.Name(), *method, *batch)
	for _, e := range res.Epochs {
		line := fmt.Sprintf("epoch %2d: %8.0f samples/s  (%v virtual)", e.Epoch, e.Throughput, e.Duration)
		if *real {
			line += fmt.Sprintf("  train %.5f  val %.5f  test %.5f", e.TrainLoss, e.ValLoss, e.TestLoss)
			if e.LRDecayed {
				line += "  [lr x0.5]"
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("mean throughput: %.0f samples/s over %v virtual\n", res.MeanThroughput, res.TotalDuration)
	if latency.Count > 0 {
		fmt.Printf("rank 0 fetch latency: p50 %v  p95 %v  p99 %v over %d loads\n",
			latency.P50, latency.P95, latency.P99, latency.Count)
	}
	if *cacheBytes > 0 {
		fmt.Printf("rank 0 cache (%s, %d B): %.1f%% hit rate, %d hits, %d misses, %d evictions, %d coalesced\n",
			cachePolicy, *cacheBytes, 100*cacheStats.HitRate(),
			cacheStats.Hits, cacheStats.Misses, cacheStats.Evictions, cacheStats.Coalesced)
	}
	fmt.Println()
	fmt.Println("per-region virtual time (all ranks):")
	fmt.Print(merged.String())
	if res.Telemetry != nil {
		fmt.Println()
		fmt.Print(res.Telemetry.String())
	}

	// Fold run-wide aggregates into the registry before the final snapshot
	// so -metrics-json (and a last /metrics scrape) sees them.
	obs.AddProfiler(reg, merged)
	obs.CollectLatencySummary(reg, func() (int64, time.Duration, time.Duration, time.Duration) {
		return latency.Count, latency.P50, latency.P95, latency.P99
	})
	if *metricsJSON != "" {
		out, err := reg.Snapshot().JSON()
		if err != nil {
			fatalf("metrics snapshot: %v", err)
		}
		if err := os.WriteFile(*metricsJSON, append(out, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsJSON)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := traces.WriteChromeTrace(f); err != nil {
			fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote Chrome trace to %s (load in about://tracing)\n", *traceOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ddstore-train: "+format+"\n", args...)
	os.Exit(1)
}
