// Command ddstore-bench runs the paper-reproduction experiments — one per
// table and figure of the DDStore paper's evaluation section — and, with
// -loadgen, the closed-loop load generator against a live ddstore-serve
// cluster.
//
// Usage:
//
//	ddstore-bench -exp fig4           # one experiment, full scale
//	ddstore-bench -exp all -quick     # whole suite at test scale
//	ddstore-bench -list               # show available experiments and modes
//	ddstore-bench -exp table2 -csv    # machine-readable output
//
//	# drive a live server: QPS/concurrency sweep with warm/cold phases
//	ddstore-serve -dataset homolumo -n 10000 -lo 0 -hi 10000 -addr 127.0.0.1:7001 &
//	ddstore-bench -loadgen -addr 127.0.0.1:7001 -clients 8 -qps 500 -mix 0.25
//	ddstore-bench -loadgen -addr 127.0.0.1:7001 -quick -out BENCH_loadgen.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ddstore/internal/bench"
	"ddstore/internal/datasets"
	"ddstore/internal/loadgen"
	"ddstore/internal/obs"
	"ddstore/internal/serveboot"
)

// usageError prints a usage-level complaint and exits 2, matching flag
// package conventions.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ddstore-bench: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	// The at-scale experiments allocate aggressively (hundreds of thousands
	// of decoded graphs in flight across simulated ranks); a soft memory
	// limit makes the GC trade CPU for residency instead of dying on
	// memory-constrained machines.
	debug.SetMemoryLimit(10 << 30)
	debug.SetGCPercent(50)

	var (
		exp        = flag.String("exp", "all", "experiment id (table1, fig4, ..., fig13) or 'all'")
		quick      = flag.Bool("quick", false, "run the scaled-down quick profile (seconds instead of minutes)")
		seed       = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit JSON (includes the fetch-latency percentile digest) instead of aligned tables")
		list       = flag.Bool("list", false, "list available experiments and exit")
		cacheBytes = flag.Int64("cache-bytes", 0, "per-rank remote-sample cache budget for DDStore runs (0 = no cache)")
		cachePol   = flag.String("cache-policy", "lru", "cache eviction policy: lru, fifo, clock")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of per-batch spans from every run (load in about://tracing)")
		metricsOut = flag.String("metrics-json", "", "write the final metrics registry snapshot to this JSON file")

		// Load-generator mode: drive a live ddstore-serve cluster instead
		// of running simulated experiments.
		loadgenMode = flag.Bool("loadgen", false, "drive a live ddstore-serve cluster (requires -addr)")
		addrs       = flag.String("addr", "", "comma-separated ddstore-serve addresses to drive")
		clients     = flag.Int("clients", 4, "concurrent load-generator workers")
		qps         = flag.Float64("qps", 200, "open-loop target QPS (token-bucket rate)")
		duration    = flag.Duration("duration", 5*time.Second, "per-phase wall budget in full mode")
		ramp        = flag.String("ramp", "", "comma-separated client counts for a closed-loop concurrency ramp (e.g. 1,4,16)")
		mix         = flag.Float64("mix", 0.25, "fraction of requests issued as OpGetBatch bulk fetches [0,1]")
		batch       = flag.Int("batch", 8, "ids per bulk fetch")
		metricsURL  = flag.String("scrape", "", "server /metrics URL to scrape after each phase (e.g. http://127.0.0.1:7901/metrics)")
		artifactOut = flag.String("out", "BENCH_loadgen.json", "loadgen JSON artifact path ('' = don't write)")
		tenant      = flag.String("tenant", "", "tenant identity declared to the server's admission control (loadgen mode)")
		elastic     = flag.Bool("elastic", false, "route -loadgen traffic through the cluster's live shard map (elastic ddstore-serve; -addr are the seeds)")
		traced      = flag.Bool("traced", false, "propagate a sampled trace context on every loadgen request; server timing segments merge into -trace-out and slowest exemplars carry trace ids")

		// Reshard mode: the self-contained live-migration bench — boot an
		// in-process 2-owner elastic cluster, grow it mid-load, and compare
		// steady-state throughput before vs after.
		reshard        = flag.Int("reshard", 0, "grow an in-process 2-owner elastic cluster to this many owners mid-load and write the pre/during/post artifact")
		reshardSamples = flag.Int("reshard-samples", 2000, "dataset size for the -reshard cluster")

		// Isolation mode: the two-tenant sweep proving a hostile tenant
		// cannot push a polite tenant's tail latency past its baseline.
		isolation  = flag.Bool("isolation", false, "run the two-tenant isolation sweep against a live ddstore-serve (requires -addr; uses -qps for the polite tenant)")
		tenantA    = flag.String("tenant-a", "alpha", "polite tenant name for -isolation")
		tenantB    = flag.String("tenant-b", "beta", "hostile tenant name for -isolation")
		hostileQPS = flag.Float64("hostile-qps", 0, "hostile tenant's offered QPS for -isolation (0 = 4x -qps)")
	)
	flag.Parse()

	// Contradictory or incomplete flag combos are usage errors, not silent
	// preferences.
	if *csv && *jsonOut {
		usageError("-csv and -json are mutually exclusive; pick one output format")
	}
	if *loadgenMode && *isolation {
		usageError("-loadgen and -isolation are mutually exclusive; pick one mode")
	}
	if *reshard != 0 && (*loadgenMode || *isolation) {
		usageError("-reshard boots its own in-process cluster; it cannot combine with -loadgen or -isolation")
	}
	if *reshard != 0 && *reshard < 3 {
		usageError("-reshard wants a target of 3+ owners (the cluster starts at 2)")
	}
	if *elastic && !*loadgenMode {
		usageError("-elastic only applies to -loadgen mode")
	}
	if *traced && !*loadgenMode {
		usageError("-traced only applies to -loadgen mode")
	}
	if *loadgenMode && *addrs == "" {
		usageError("-loadgen needs -addr: the address(es) of a live ddstore-serve (start one with: ddstore-serve -dataset homolumo -n 10000 -lo 0 -hi 10000)")
	}
	if *isolation && *addrs == "" {
		usageError("-isolation needs -addr: a live ddstore-serve with the front end enabled (e.g. ddstore-serve -dataset homolumo -tenants 'alpha:rate=2000;beta:rate=100')")
	}
	if !*loadgenMode && !*isolation && *reshard == 0 {
		for name, set := range map[string]bool{
			"-addr": *addrs != "", "-ramp": *ramp != "", "-scrape": *metricsURL != "",
			"-tenant": *tenant != "",
		} {
			if set {
				usageError("%s only applies to -loadgen, -isolation, or -reshard mode", name)
			}
		}
	}

	if *list {
		fmt.Printf("%-8s %s\n", "loadgen", "Live-serve load generator: open/closed-loop QPS and concurrency sweeps (-loadgen -addr ...)")
		fmt.Printf("%-8s %s\n", "isolation", "Two-tenant isolation sweep: polite tenant alone vs alongside a hostile flood (-isolation -addr ...)")
		fmt.Printf("%-8s %s\n", "reshard", "Live-resharding bench: in-process elastic cluster grown mid-load, pre/during/post steady state (-reshard 3)")
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *loadgenMode || *isolation || *reshard != 0 {
		lf := loadgenFlags{
			addrs: *addrs, quick: *quick, seed: *seed, csv: *csv, json: *jsonOut,
			clients: *clients, qps: *qps, duration: *duration, ramp: *ramp,
			mix: *mix, batch: *batch, metricsURL: *metricsURL, out: *artifactOut,
			tenant: *tenant, elastic: *elastic, traced: *traced, traceOut: *traceOut,
		}
		switch {
		case *isolation:
			runIsolation(lf, *tenantA, *tenantB, *hostileQPS)
		case *reshard != 0:
			runReshard(lf, *reshard, *reshardSamples)
		default:
			runLoadgen(lf)
		}
		return
	}

	opts := bench.Options{Quick: *quick, Seed: *seed, CacheBytes: *cacheBytes, CachePolicy: *cachePol}
	if *metricsOut != "" {
		opts.Metrics = obs.NewRegistry()
	}
	if *traceOut != "" {
		opts.Trace = obs.NewTraceSink(obs.DefaultSpanCap)
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				usageError("unknown experiment %q (use -list)", id)
			}
			exps = append(exps, e)
		}
	}

	// Experiments in the same group share cached runs (fig5/fig6/table2 all
	// analyze one suite of runs); reset memoization only across groups to
	// bound peak memory without repeating work.
	group := func(id string) string {
		switch id {
		case "fig5", "fig6", "table2":
			return "perl64-suite"
		case "fig12", "table3":
			return "width-suite"
		case "fig8", "fig9":
			return "scaling-suite"
		default:
			return id
		}
	}
	prevGroup := ""
	for _, e := range exps {
		if g := group(e.ID); g != prevGroup {
			bench.ResetCaches()
			prevGroup = g
		}
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		printReport(report, *csv, *jsonOut)
		if !*jsonOut {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if opts.Metrics != nil {
		out, err := opts.Metrics.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: metrics snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	if opts.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %v\n", err)
			os.Exit(1)
		}
		werr := opts.Trace.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write trace: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load in about://tracing)\n", *traceOut)
	}
}

func printReport(report *bench.Report, csv, jsonOut bool) {
	switch {
	case jsonOut:
		out, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %s: %v\n", report.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
	case csv:
		fmt.Printf("# %s — %s\n%s\n", report.ID, report.Title, report.CSV())
	default:
		fmt.Println(report.String())
	}
}

type loadgenFlags struct {
	addrs      string
	quick      bool
	seed       uint64
	csv, json  bool
	clients    int
	qps        float64
	duration   time.Duration
	ramp       string
	mix        float64
	batch      int
	metricsURL string
	out        string
	tenant     string
	elastic    bool
	traced     bool
	traceOut   string
}

func runLoadgen(f loadgenFlags) {
	var rampSteps []int
	if f.ramp != "" {
		for _, s := range strings.Split(f.ramp, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				usageError("bad -ramp step %q: want positive client counts like 1,4,16", s)
			}
			rampSteps = append(rampSteps, n)
		}
	}

	cfg := loadgen.Config{
		Addrs: strings.Split(f.addrs, ","),
		Seed:  f.seed,
		Phases: loadgen.Sweep(loadgen.SweepOptions{
			Quick: f.quick, Clients: f.clients, Ramp: rampSteps,
			QPS: f.qps, Duration: f.duration, Mix: f.mix, BatchSize: f.batch,
		}),
		MetricsURL: f.metricsURL,
		Tenant:     f.tenant,
		Elastic:    f.elastic,
		Trace:      f.traced,
	}
	for i := range cfg.Addrs {
		cfg.Addrs[i] = strings.TrimSpace(cfg.Addrs[i])
	}
	// With both -traced and -trace-out set, the run collects client root
	// spans plus the server segments synthesized from timing trailers into
	// one ring, so the emitted file is a single merged Chrome trace.
	var ring *obs.SpanRing
	if f.traced && f.traceOut != "" {
		ring = obs.NewSpanRing(obs.DefaultSpanCap, 0)
		ring.SetLabel("loadgen")
		cfg.TraceSpans = ring
	}

	// Ctrl-C drains in-flight workers and still reports the phases that
	// completed, so a long sweep interrupted late is not wasted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.Run(ctx, cfg)
	if res == nil && err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-bench: loadgen: %v\n", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-bench: loadgen interrupted (%v); reporting completed phases\n", err)
	}

	printReport(res.Report(), f.csv, f.json)
	if f.out != "" {
		title := fmt.Sprintf("loadgen sweep against %s", f.addrs)
		if err := res.Artifact(title).WriteFile(f.out); err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote loadgen artifact to %s\n", f.out)
	}
	if ring != nil {
		fl, err := os.Create(f.traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %v\n", err)
			os.Exit(1)
		}
		werr := obs.WriteChromeTrace(fl, ring)
		if cerr := fl.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write trace: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote merged client+server Chrome trace to %s (load in about://tracing)\n", f.traceOut)
	}
}

// runReshard is the self-contained live-migration bench: boot a 2-owner
// elastic cluster in-process, run a pre/during/post closed-loop plan
// through the shard-map-routing client, grow the cluster to the target
// owner count as the middle phase starts, and report the steady-state
// throughput delta. The acceptance bound is a <= 5% regression.
func runReshard(f loadgenFlags, owners, samples int) {
	c, err := serveboot.BootCluster(serveboot.ElasticConfig{
		Source:    datasets.HomoLumo(datasets.Config{NumGraphs: samples}),
		Owners:    2,
		DebugAddr: "127.0.0.1:0",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-bench: reshard: boot cluster: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	dur := f.duration
	if f.quick {
		dur = 700 * time.Millisecond
	}
	phase := func(name string) loadgen.Phase {
		return loadgen.Phase{
			Name: name, Mode: loadgen.Closed, Workers: f.clients,
			Duration: dur, Mix: f.mix, BatchSize: f.batch,
		}
	}
	cfg := loadgen.Config{
		Addrs:      c.Addrs(),
		Seed:       f.seed,
		Elastic:    true,
		Phases:     []loadgen.Phase{phase("pre-reshard"), phase("during-reshard"), phase("post-reshard")},
		MetricsURL: c.MetricsURL(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.RunReshard(ctx, cfg, c, owners)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-bench: reshard: %v\n", err)
		os.Exit(1)
	}

	printReport(res.Report(), f.csv, f.json)
	if !f.json {
		verdict := "HELD"
		if res.RegressionPct > 5 {
			verdict = "BROKEN"
		}
		fmt.Printf("reshard: generation %d -> %d (2 -> %d owners) in %.3fs; steady state %.0f -> %.0f samples/s (regression %.1f%%, bound 5%%: %s)\n",
			res.PreGen, res.PostGen, owners, res.MigrationS,
			res.Phases[0].SamplesPerS, res.Phases[2].SamplesPerS, res.RegressionPct, verdict)
	}
	if f.out != "" {
		title := fmt.Sprintf("live reshard 2 -> %d owners under closed-loop load (%d samples, %d workers)",
			owners, samples, f.clients)
		if err := res.Artifact(title).WriteFile(f.out); err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote reshard artifact to %s\n", f.out)
	}
	// The hard gate is correctness: a migrated chunk must never surface as
	// a client error. The throughput verdict above is advisory — on a
	// shared box the in-process cluster competes with its own clients for
	// cores, so the steady-state bound is judged on quiet hardware.
	for _, ph := range res.Phases {
		if ph.Errors > 0 {
			fmt.Fprintf(os.Stderr, "ddstore-bench: reshard: phase %s saw %d hard errors\n", ph.Name, ph.Errors)
			os.Exit(1)
		}
	}
}

func runIsolation(f loadgenFlags, tenantA, tenantB string, hostileQPS float64) {
	qpsA := f.qps
	if qpsA <= 0 {
		qpsA = 200
	}
	if hostileQPS <= 0 {
		hostileQPS = 4 * qpsA
	}
	addrs := strings.Split(f.addrs, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.RunIsolation(ctx, loadgen.IsolationConfig{
		Addrs:      addrs,
		MetricsURL: f.metricsURL,
		Seed:       f.seed,
		TenantA:    tenantA,
		TenantB:    tenantB,
		QPSA:       qpsA,
		QPSB:       hostileQPS,
		Duration:   f.duration,
		Workers:    f.clients,
		MixB:       f.mix,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-bench: isolation: %v\n", err)
		os.Exit(1)
	}

	// Reuse the loadgen table: three rows (baseline, contended, hostile).
	synth := &loadgen.Result{
		Addrs:  addrs,
		Seed:   f.seed,
		Phases: []loadgen.PhaseResult{res.Baseline, res.Contended, res.Hostile},
	}
	printReport(synth.Report(), f.csv, f.json)
	if !f.json {
		verdict := "HELD"
		if res.P99Ratio > 2 {
			verdict = "BROKEN"
		}
		fmt.Printf("isolation: %s p99 %.3fms alone -> %.3fms contended (ratio %.2fx, bound 2x: %s); %s shed %d of %d offered\n",
			tenantA, res.Baseline.P99ms, res.Contended.P99ms, res.P99Ratio, verdict,
			tenantB, res.Hostile.Shed, res.Hostile.Requests)
	}
	if f.out != "" {
		title := fmt.Sprintf("two-tenant isolation sweep against %s (%s at %.0f qps vs %s at %.0f qps)",
			f.addrs, tenantA, qpsA, tenantB, hostileQPS)
		if err := synth.Artifact(title).WriteFile(f.out); err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write artifact: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote isolation artifact to %s\n", f.out)
	}
}
