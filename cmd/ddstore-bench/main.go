// Command ddstore-bench runs the paper-reproduction experiments: one per
// table and figure of the DDStore paper's evaluation section.
//
// Usage:
//
//	ddstore-bench -exp fig4           # one experiment, full scale
//	ddstore-bench -exp all -quick     # whole suite at test scale
//	ddstore-bench -list               # show available experiments
//	ddstore-bench -exp table2 -csv    # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"ddstore/internal/bench"
	"ddstore/internal/obs"
)

func main() {
	// The at-scale experiments allocate aggressively (hundreds of thousands
	// of decoded graphs in flight across simulated ranks); a soft memory
	// limit makes the GC trade CPU for residency instead of dying on
	// memory-constrained machines.
	debug.SetMemoryLimit(10 << 30)
	debug.SetGCPercent(50)

	var (
		exp        = flag.String("exp", "all", "experiment id (table1, fig4, ..., fig13) or 'all'")
		quick      = flag.Bool("quick", false, "run the scaled-down quick profile (seconds instead of minutes)")
		seed       = flag.Uint64("seed", 0, "random seed (0 = default)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut    = flag.Bool("json", false, "emit JSON (includes the fetch-latency percentile digest) instead of aligned tables")
		list       = flag.Bool("list", false, "list available experiments and exit")
		cacheBytes = flag.Int64("cache-bytes", 0, "per-rank remote-sample cache budget for DDStore runs (0 = no cache)")
		cachePol   = flag.String("cache-policy", "lru", "cache eviction policy: lru, fifo, clock")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of per-batch spans from every run (load in about://tracing)")
		metricsOut = flag.String("metrics-json", "", "write the final metrics registry snapshot to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick, Seed: *seed, CacheBytes: *cacheBytes, CachePolicy: *cachePol}
	if *metricsOut != "" {
		opts.Metrics = obs.NewRegistry()
	}
	if *traceOut != "" {
		opts.Trace = obs.NewTraceSink(obs.DefaultSpanCap)
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ddstore-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	// Experiments in the same group share cached runs (fig5/fig6/table2 all
	// analyze one suite of runs); reset memoization only across groups to
	// bound peak memory without repeating work.
	group := func(id string) string {
		switch id {
		case "fig5", "fig6", "table2":
			return "perl64-suite"
		case "fig12", "table3":
			return "width-suite"
		case "fig8", "fig9":
			return "scaling-suite"
		default:
			return id
		}
	}
	prevGroup := ""
	for _, e := range exps {
		if g := group(e.ID); g != prevGroup {
			bench.ResetCaches()
			prevGroup = g
		}
		start := time.Now()
		report, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			out, err := report.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "ddstore-bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Println(out)
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", report.ID, report.Title, report.CSV())
		default:
			fmt.Println(report.String())
		}
		if !*jsonOut {
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}

	if opts.Metrics != nil {
		out, err := opts.Metrics.Snapshot().JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: metrics snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metricsOut, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics snapshot to %s\n", *metricsOut)
	}
	if opts.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: %v\n", err)
			os.Exit(1)
		}
		werr := opts.Trace.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "ddstore-bench: write trace: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (load in about://tracing)\n", *traceOut)
	}
}
