// Command ddstore-gen materializes the synthetic atomistic datasets as real
// files in either storage format, for use with the real-disk stores and the
// TCP transport.
//
// Usage:
//
//	ddstore-gen -dataset homolumo -n 10000 -format cff -parts 8 -out /tmp/aisd
//	ddstore-gen -dataset ising -n 1000 -format pff -out /tmp/ising
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ddstore/internal/cff"
	"ddstore/internal/datasets"
	"ddstore/internal/pff"
)

func main() {
	var (
		name   = flag.String("dataset", "homolumo", "dataset: ising, homolumo, discrete, smooth")
		n      = flag.Int("n", 10000, "number of graphs")
		bins   = flag.Int("bins", 0, "smooth-spectrum grid size (smooth only; 0 = default 375)")
		format = flag.String("format", "cff", "storage format: pff (one file per sample) or cff (containers)")
		parts  = flag.Int("parts", 8, "container subfile count (cff only)")
		out    = flag.String("out", "", "output directory (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ddstore-gen: -out is required")
		os.Exit(2)
	}

	cfg := datasets.Config{NumGraphs: *n, SpectrumBins: *bins}
	var ds *datasets.Dataset
	switch *name {
	case "ising":
		ds = datasets.Ising(cfg)
	case "homolumo":
		ds = datasets.HomoLumo(cfg)
	case "discrete":
		ds = datasets.AISDExDiscrete(cfg)
	case "smooth":
		ds = datasets.AISDExSmooth(cfg)
	default:
		fmt.Fprintf(os.Stderr, "ddstore-gen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	start := time.Now()
	var err error
	switch *format {
	case "pff":
		err = pff.Write(*out, ds, 0, int64(ds.Len()))
	case "cff":
		err = cff.Write(*out, ds, *parts)
	default:
		fmt.Fprintf(os.Stderr, "ddstore-gen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ddstore-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d graphs as %s to %s in %v\n",
		ds.Name(), ds.Len(), *format, *out, time.Since(start).Round(time.Millisecond))
}
