// Ising example: distributed-data-parallel training of a real (scaled-down)
// HydraGNN on the synthetic Ising dataset — the paper's benchmark for
// ferromagnetic materials. Four ranks each hold a chunk of the dataset in a
// DDStore; every epoch is globally reshuffled; gradients are allreduced.
//
//	go run ./examples/ising
package main

import (
	"fmt"
	"log"
	"sync"

	"ddstore"
)

func main() {
	dataset := ddstore.Ising(ddstore.DatasetConfig{NumGraphs: 400})
	world, err := ddstore.NewWorld(4, 7, ddstore.WithMachine(ddstore.Laptop()))
	if err != nil {
		log.Fatal(err)
	}

	var result *ddstore.TrainResult
	var mu sync.Mutex
	err = world.Run(func(c *ddstore.Comm) error {
		store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{})
		if err != nil {
			return err
		}
		// A small HydraGNN: enough to learn the Ising Hamiltonian's
		// per-atom energy from spins and positions.
		model := ddstore.NewModel(ddstore.ModelConfig{
			NodeFeatDim: dataset.NodeFeatDim(),
			EdgeFeatDim: dataset.EdgeFeatDim(),
			HiddenDim:   16,
			ConvLayers:  2,
			FCLayers:    1,
			OutputDim:   dataset.OutputDim(),
			Seed:        1,
		})
		res, err := ddstore.Train(c, ddstore.TrainConfig{
			Loader:     &ddstore.PlaneLoader{Plane: store},
			LocalBatch: 8,
			Epochs:     8,
			Seed:       3,
			Model:      model,
			LR:         1e-3,
			Eval:       true,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		if c.Rank() == 0 {
			result = res
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("epoch  train-MSE   val-MSE    test-MSE")
	for _, e := range result.Epochs {
		fmt.Printf("%4d   %9.5f  %9.5f  %9.5f\n", e.Epoch, e.TrainLoss, e.ValLoss, e.TestLoss)
	}
	first, last := result.Epochs[0], result.Epochs[len(result.Epochs)-1]
	fmt.Printf("\ntrain MSE improved %.1fx over %d epochs\n",
		first.TrainLoss/last.TrainLoss, len(result.Epochs))
}
