// UV-vis spectra example: the paper's most demanding workload — multi-head
// prediction of Gaussian-smoothed UV-vis absorption spectra (ORNL AISD-Ex
// Smooth). A real scaled-down HydraGNN trains under DDP with the
// ReduceLROnPlateau scheduler; watch the learning rate decays appear as the
// validation loss plateaus (the paper's Fig. 13 bump at epoch 26 is the
// same mechanism).
//
//	go run ./examples/uvspectra
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"ddstore"
)

func main() {
	// 48-bin smoothed spectra (the paper's grid is 37,500 bins; the physics
	// of the loss surface is the same).
	dataset := ddstore.AISDExSmooth(ddstore.DatasetConfig{NumGraphs: 320, SpectrumBins: 48})
	world, err := ddstore.NewWorld(4, 3, ddstore.WithMachine(ddstore.Summit()))
	if err != nil {
		log.Fatal(err)
	}

	var result *ddstore.TrainResult
	var mu sync.Mutex
	err = world.Run(func(c *ddstore.Comm) error {
		store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{})
		if err != nil {
			return err
		}
		model := ddstore.NewModel(ddstore.ModelConfig{
			NodeFeatDim: dataset.NodeFeatDim(),
			HiddenDim:   16,
			ConvLayers:  2,
			FCLayers:    2,
			OutputDim:   dataset.OutputDim(), // one neuron per spectrum bin
			Seed:        9,
		})
		res, err := ddstore.Train(c, ddstore.TrainConfig{
			Loader:     &ddstore.PlaneLoader{Plane: store},
			LocalBatch: 8,
			Epochs:     12,
			Seed:       4,
			Model:      model,
			LR:         1e-3,
			Plateau:    true,
			Eval:       true,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		if c.Rank() == 0 {
			result = res
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("multi-head spectrum model: %d output neurons\n\n", dataset.OutputDim())
	fmt.Println("epoch  train-MSE   val-MSE    test-MSE   lr")
	for _, e := range result.Epochs {
		marker := ""
		if e.LRDecayed {
			marker = "  <- ReduceLROnPlateau halved the rate"
		}
		fmt.Printf("%4d   %9.5f  %9.5f  %9.5f%s\n", e.Epoch, e.TrainLoss, e.ValLoss, e.TestLoss, marker)
	}
	fmt.Println(strings.Repeat("-", 46))
	fmt.Printf("modeled training time on %d Summit GPUs: %v\n", 4, world.MaxTime())
}
