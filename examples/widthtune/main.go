// Width tuning example: the paper's §4.6 study in miniature. The width
// parameter w partitions N ranks into N/w replica groups; smaller widths
// mean more replicas and shorter fetch distances. This example measures
// per-sample load latency percentiles for each width on a modeled
// 16-node / 64-GPU Perlmutter — reproducing the Fig. 12 / Table 3 effect:
// width=2 cuts the median by ~80% versus the single-replica default.
//
//	go run ./examples/widthtune
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"ddstore"
)

func main() {
	const ranks = 64
	dataset := ddstore.AISDExDiscrete(ddstore.DatasetConfig{NumGraphs: 20000})

	fmt.Printf("per-sample load latency on modeled Perlmutter, %d GPUs (%d nodes):\n\n", ranks, ranks/4)
	fmt.Println("width  replicas   P50       P95       P99")

	var defaultMedian time.Duration
	for _, width := range []int{64, 32, 16, 8, 4, 2} {
		world, err := ddstore.NewWorld(ranks, 21, ddstore.WithMachine(ddstore.Perlmutter()))
		if err != nil {
			log.Fatal(err)
		}
		var all []time.Duration
		var mu sync.Mutex
		err = world.Run(func(c *ddstore.Comm) error {
			store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{Width: width})
			if err != nil {
				return err
			}
			// Each rank loads 4 shuffled batches of 128, like training does.
			rng := int64(c.Rank()*2654435761 + 12345)
			ids := make([]int64, 512)
			for i := range ids {
				rng = rng*6364136223846793005 + 1442695040888963407
				ids[i] = (rng >> 11) % int64(store.Len())
				if ids[i] < 0 {
					ids[i] += int64(store.Len())
				}
			}
			_, lat, err := store.LoadTimed(ids)
			if err != nil {
				return err
			}
			mu.Lock()
			all = append(all, lat...)
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		p := func(q float64) time.Duration { return all[int(q*float64(len(all)-1))] }
		p50 := p(0.50)
		if width == ranks {
			defaultMedian = p50
		}
		fmt.Printf("%5d  %8d   %-8v  %-8v  %-8v\n",
			width, ranks/width,
			p50.Round(time.Microsecond), p(0.95).Round(time.Microsecond), p(0.99).Round(time.Microsecond))
	}

	world, _ := ddstore.NewWorld(ranks, 21, ddstore.WithMachine(ddstore.Perlmutter()))
	_ = world
	fmt.Printf("\nwidth=%d is the default (one replica over all ranks)\n", ranks)
	fmt.Printf("paper Table 3: width=2 reduces the median by 79-87%% — here the default median is %v\n", defaultMedian)
	fmt.Println("the memory cost is proportional to the replica count (N/width)")
}
