// Quickstart: create a simulated 8-rank world, build a DDStore over a
// synthetic molecular dataset, and load globally-shuffled batches with
// one-sided RMA.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ddstore"
)

func main() {
	// A dataset of 10,000 synthetic organic molecules with HOMO-LUMO-gap
	// labels. Samples are generated deterministically by id.
	dataset := ddstore.HomoLumo(ddstore.DatasetConfig{NumGraphs: 10000})

	// Eight ranks on a modeled Perlmutter: 2 nodes × 4 GPUs. The machine
	// model drives virtual-time accounting for every I/O and message.
	world, err := ddstore.NewWorld(8, 42, ddstore.WithMachine(ddstore.Perlmutter()))
	if err != nil {
		log.Fatal(err)
	}

	err = world.Run(func(c *ddstore.Comm) error {
		// Width 4 = two replica groups of 4 ranks; each group holds a full
		// copy of the dataset striped over its members.
		store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{Width: 4})
		if err != nil {
			return err
		}
		lo, hi := store.LocalRange()
		if c.Rank() == 0 {
			fmt.Printf("store: %d samples, width=%d, %d replicas\n",
				store.Len(), store.Width(), store.Replicas())
		}
		fmt.Printf("rank %d holds samples [%d,%d) — %.1f MB in memory\n",
			c.Rank(), lo, hi, float64(store.MemoryBytes())/(1<<20))

		// A shuffled batch: ids anywhere in the dataset. Remote samples
		// arrive via MPI-style one-sided Gets from the owner's memory.
		ids := []int64{1, 9999, 5000, 1234, 42, 7777, 2500, 8600}
		graphs, err := store.Load(ids)
		if err != nil {
			return err
		}
		batch, err := ddstore.NewBatch(graphs)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 batch: %d graphs, %d atoms, %d bonds, target dim %d\n",
				batch.NumGraphs, batch.NumNodes, batch.NumEdges()/2, batch.YDim)
			st := store.Stats()
			fmt.Printf("rank 0 traffic: %d local reads, %d remote RMA gets\n",
				st.LocalReads, st.RemoteGets)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled wall time: %v\n", world.MaxTime())
}
