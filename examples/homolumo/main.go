// HOMO-LUMO example: the paper's headline workload — training on organic
// molecules to predict the HOMO-LUMO gap — comparing end-to-end throughput
// of DDStore against loading every batch from the (simulated) parallel
// filesystem. This is the Fig. 4 comparison in miniature, driven entirely
// through the public API plus the training cost model.
//
//	go run ./examples/homolumo
package main

import (
	"fmt"
	"log"
	"sync"

	"ddstore"
)

func main() {
	dataset := ddstore.HomoLumo(ddstore.DatasetConfig{NumGraphs: 20000})
	machine := ddstore.Perlmutter()
	const ranks = 16

	throughput := func(width int) float64 {
		world, err := ddstore.NewWorld(ranks, 11, ddstore.WithMachine(machine))
		if err != nil {
			log.Fatal(err)
		}
		var tp float64
		var mu sync.Mutex
		err = world.Run(func(c *ddstore.Comm) error {
			store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{Width: width})
			if err != nil {
				return err
			}
			res, err := ddstore.Train(c, ddstore.TrainConfig{
				Loader:           &ddstore.PlaneLoader{Plane: store},
				LocalBatch:       64,
				Epochs:           3,
				MaxStepsPerEpoch: 8,
				Seed:             5,
				SimModel:         ddstore.PaperModelConfig(dataset.NodeFeatDim(), 0, dataset.OutputDim()),
			})
			if err != nil {
				return err
			}
			mu.Lock()
			if c.Rank() == 0 {
				tp = res.MeanThroughput
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		return tp
	}

	fmt.Printf("HydraGNN training throughput on modeled %s, %d GPUs, batch 64:\n\n", machine.Name, ranks)
	fmt.Println("width  replicas  samples/s")
	for _, width := range []int{16, 8, 4, 2} {
		tp := throughput(width)
		fmt.Printf("%5d  %8d  %9.0f\n", width, ranks/width, tp)
	}
	fmt.Println("\nsmaller widths trade memory (more replicas) for shorter fetch distance;")
	fmt.Println("end-to-end the effect is modest because loading overlaps GPU compute (paper Fig. 11)")
}
