// Multitask example: HydraGNN's multi-headed design on the AISD-Ex
// discrete task — one head predicts the 50 UV-vis peak positions, a second
// head the 50 intensities, trained jointly with per-head loss weights. The
// example also contrasts the two message-passing policies (PNA, the paper's
// choice, and the cheaper GIN).
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"
	"sync"

	"ddstore"
)

func trainOnce(dataset *ddstore.Dataset, conv ddstore.ConvType) []ddstore.EpochStats {
	world, err := ddstore.NewWorld(2, 5, ddstore.WithMachine(ddstore.Laptop()))
	if err != nil {
		log.Fatal(err)
	}
	var epochs []ddstore.EpochStats
	var mu sync.Mutex
	err = world.Run(func(c *ddstore.Comm) error {
		store, err := ddstore.Open(c, dataset, ddstore.StoreOptions{})
		if err != nil {
			return err
		}
		model := ddstore.NewModel(ddstore.ModelConfig{
			NodeFeatDim: dataset.NodeFeatDim(),
			HiddenDim:   16,
			ConvLayers:  2,
			Conv:        conv,
			Heads: []ddstore.ModelHead{
				{Name: "peak-positions", OutputDim: 50, FCLayers: 1},
				{Name: "intensities", OutputDim: 50, FCLayers: 1, Weight: 2},
			},
			Seed: 11,
		})
		res, err := ddstore.Train(c, ddstore.TrainConfig{
			Loader:     &ddstore.PlaneLoader{Plane: store},
			LocalBatch: 8,
			Epochs:     6,
			Seed:       2,
			Model:      model,
			LR:         1e-3,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		if c.Rank() == 0 {
			epochs = res.Epochs
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return epochs
}

func main() {
	dataset := ddstore.AISDExDiscrete(ddstore.DatasetConfig{NumGraphs: 200})
	fmt.Println("two-headed HydraGNN on AISD-Ex discrete (50 peaks + 50 intensities)")
	fmt.Println()
	for _, conv := range []ddstore.ConvType{ddstore.ConvPNA, ddstore.ConvGIN} {
		epochs := trainOnce(dataset, conv)
		first, last := epochs[0], epochs[len(epochs)-1]
		fmt.Printf("%-4v  weighted MSE %8.5f -> %8.5f over %d epochs\n",
			conv, first.TrainLoss, last.TrainLoss, len(epochs))
	}
	fmt.Println("\nPNA's mean/min/max/std aggregators with degree scalers cost ~6x GIN's")
	fmt.Println("sum aggregation per layer; the paper uses PNA for its accuracy on")
	fmt.Println("atomistic property prediction")
}
