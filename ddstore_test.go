package ddstore

import (
	"fmt"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart does:
// build a world, open a store, load shuffled batches, train a tiny model.
func TestFacadeEndToEnd(t *testing.T) {
	dataset := HomoLumo(DatasetConfig{NumGraphs: 200})
	world, err := NewWorld(4, 7, WithMachine(Laptop()))
	if err != nil {
		t.Fatal(err)
	}
	err = world.Run(func(c *Comm) error {
		store, err := Open(c, dataset, StoreOptions{Width: 2})
		if err != nil {
			return err
		}
		if store.Replicas() != 2 {
			return fmt.Errorf("replicas = %d", store.Replicas())
		}
		graphs, err := store.Load([]int64{0, 150, 42, 199})
		if err != nil {
			return err
		}
		batch, err := NewBatch(graphs)
		if err != nil {
			return err
		}
		if batch.NumGraphs != 4 {
			return fmt.Errorf("batch has %d graphs", batch.NumGraphs)
		}
		model := NewModel(ModelConfig{
			NodeFeatDim: dataset.NodeFeatDim(),
			HiddenDim:   8,
			ConvLayers:  1,
			FCLayers:    1,
			OutputDim:   dataset.OutputDim(),
			Seed:        1,
		})
		res, err := Train(c, TrainConfig{
			Loader:     &PlaneLoader{Plane: store},
			LocalBatch: 4,
			Epochs:     2,
			Seed:       2,
			Model:      model,
		})
		if err != nil {
			return err
		}
		if len(res.Epochs) != 2 {
			return fmt.Errorf("trained %d epochs", len(res.Epochs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if world.MaxTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestFacadeMachines(t *testing.T) {
	if Summit().GPUsPerNode != 6 || Perlmutter().GPUsPerNode != 4 {
		t.Fatal("machine models wrong")
	}
	if Summit().Name != "Summit" || Perlmutter().Name != "Perlmutter" || Laptop().Name != "Laptop" {
		t.Fatal("machine names wrong")
	}
}

func TestFacadeDatasets(t *testing.T) {
	for _, ds := range []*Dataset{
		Ising(DatasetConfig{NumGraphs: 5}),
		HomoLumo(DatasetConfig{NumGraphs: 5}),
		AISDExDiscrete(DatasetConfig{NumGraphs: 5}),
		AISDExSmooth(DatasetConfig{NumGraphs: 5, SpectrumBins: 20}),
	} {
		g, err := ds.Sample(0)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name(), err)
		}
		data := g.Encode()
		back, err := DecodeGraph(data)
		if err != nil {
			t.Fatalf("%s: %v", ds.Name(), err)
		}
		if back.NumNodes != g.NumNodes {
			t.Fatalf("%s: decode mismatch", ds.Name())
		}
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 18 {
		t.Fatalf("%d experiments registered, want 18 (every paper table and figure plus 3 ablations, the degraded-mode soak, and the cache sweep)", len(exps))
	}
	if _, ok := LookupExperiment("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := LookupExperiment("bogus"); ok {
		t.Fatal("bogus experiment found")
	}
}

func TestPaperModelConfig(t *testing.T) {
	cfg := PaperModelConfig(3, 0, 100)
	if cfg.HiddenDim != 200 || cfg.ConvLayers != 6 || cfg.FCLayers != 3 {
		t.Fatalf("paper config = %+v", cfg)
	}
}
