module ddstore

go 1.22
